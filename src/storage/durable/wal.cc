#include "storage/durable/wal.h"

#include <cstring>

#include "common/guardrails.h"

namespace gdlog {

namespace {

// Value wire tags (independent of ValueKind's numeric values, which are
// an in-memory detail).
constexpr uint8_t kTagInt = 0;
constexpr uint8_t kTagSymbol = 1;
constexpr uint8_t kTagTerm = 2;
constexpr uint8_t kTagNil = 3;

Status CorruptStatus(std::string msg) {
  return Status::RuntimeError("[GD211] " + std::move(msg));
}

}  // namespace

std::string_view FsyncPolicyName(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "batch";
}

Result<FsyncPolicy> ParseFsyncPolicy(std::string_view name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "batch") return FsyncPolicy::kBatch;
  if (name == "off") return FsyncPolicy::kOff;
  return Status::InvalidArgument("unknown fsync policy '" + std::string(name) +
                                 "' (expected always, batch, or off)");
}

// -- Codec -------------------------------------------------------------------

void AppendU32(std::string* buf, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buf->append(b, 4);
}

void AppendU64(std::string* buf, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buf->append(b, 8);
}

void AppendBytes(std::string* buf, std::string_view s) {
  AppendU32(buf, static_cast<uint32_t>(s.size()));
  buf->append(s.data(), s.size());
}

void AppendValue(std::string* buf, const ValueStore& store, Value v) {
  switch (v.kind()) {
    case ValueKind::kInt:
      buf->push_back(static_cast<char>(kTagInt));
      AppendU64(buf, static_cast<uint64_t>(v.AsInt()));
      return;
    case ValueKind::kSymbol:
      buf->push_back(static_cast<char>(kTagSymbol));
      AppendBytes(buf, store.SymbolName(v));
      return;
    case ValueKind::kTerm: {
      buf->push_back(static_cast<char>(kTagTerm));
      const TermId id = v.AsTermId();
      AppendBytes(buf, store.SymbolName(store.TermFunctor(id)));
      const std::span<const Value> args = store.TermArgs(id);
      AppendU32(buf, static_cast<uint32_t>(args.size()));
      for (Value a : args) AppendValue(buf, store, a);
      return;
    }
    case ValueKind::kNil:
      buf->push_back(static_cast<char>(kTagNil));
      return;
  }
}

Status ByteReader::ReadU32(uint32_t* v) {
  if (size - pos < 4) return CorruptStatus("truncated u32 field");
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<unsigned char>(data[pos + i]))
         << (8 * i);
  }
  pos += 4;
  *v = r;
  return Status::OK();
}

Status ByteReader::ReadU64(uint64_t* v) {
  if (size - pos < 8) return CorruptStatus("truncated u64 field");
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<unsigned char>(data[pos + i]))
         << (8 * i);
  }
  pos += 8;
  *v = r;
  return Status::OK();
}

Status ByteReader::ReadBytes(size_t n, std::string_view* s) {
  if (size - pos < n) return CorruptStatus("truncated byte field");
  *s = std::string_view(data + pos, n);
  pos += n;
  return Status::OK();
}

Status ByteReader::ReadValue(ValueStore* store, Value* v, int depth) {
  if (depth > kMaxValueNesting) {
    return CorruptStatus("term nesting exceeds " +
                         std::to_string(kMaxValueNesting) + " levels");
  }
  if (AtEnd()) return CorruptStatus("truncated value tag");
  const uint8_t tag = static_cast<unsigned char>(data[pos++]);
  switch (tag) {
    case kTagInt: {
      uint64_t bits = 0;
      GDLOG_RETURN_IF_ERROR(ReadU64(&bits));
      const int64_t i = static_cast<int64_t>(bits);
      if (!Value::IntInRange(i)) {
        return CorruptStatus("int value out of range: " + std::to_string(i));
      }
      *v = Value::Int(i);
      return Status::OK();
    }
    case kTagSymbol: {
      uint32_t len = 0;
      GDLOG_RETURN_IF_ERROR(ReadU32(&len));
      std::string_view name;
      GDLOG_RETURN_IF_ERROR(ReadBytes(len, &name));
      *v = store->MakeSymbol(name);
      return Status::OK();
    }
    case kTagTerm: {
      uint32_t len = 0;
      GDLOG_RETURN_IF_ERROR(ReadU32(&len));
      std::string_view functor;
      GDLOG_RETURN_IF_ERROR(ReadBytes(len, &functor));
      // Copy out: MakeSymbol below may grow the table args point into.
      const std::string functor_copy(functor);
      uint32_t argc = 0;
      GDLOG_RETURN_IF_ERROR(ReadU32(&argc));
      if (argc > size - pos) {  // each arg is at least one tag byte
        return CorruptStatus("term arg count exceeds remaining bytes");
      }
      std::vector<Value> args(argc);
      for (uint32_t i = 0; i < argc; ++i) {
        GDLOG_RETURN_IF_ERROR(ReadValue(store, &args[i], depth + 1));
      }
      *v = store->MakeTerm(functor_copy, args);
      return Status::OK();
    }
    case kTagNil:
      *v = Value::Nil();
      return Status::OK();
    default:
      return CorruptStatus("unknown value tag " + std::to_string(tag));
  }
}

namespace {

// type + payload for one record (the bytes the CRC covers).
std::string EncodeBody(const ValueStore& store, WalRecordType type,
                       std::string_view name, uint32_t arity,
                       TupleView tuple) {
  std::string body;
  body.push_back(static_cast<char>(type));
  AppendBytes(&body, name);
  AppendU32(&body, arity);
  if (type != WalRecordType::kCreateRelation) {
    for (Value v : tuple) AppendValue(&body, store, v);
  }
  return body;
}

Status DecodeBody(std::string_view body, ValueStore* store, WalRecord* out) {
  ByteReader r{body.data(), body.size(), 0};
  if (r.AtEnd()) return CorruptStatus("empty record body");
  const uint8_t type = static_cast<unsigned char>(body[r.pos++]);
  if (type < 1 || type > 3) {
    return CorruptStatus("unknown record type " + std::to_string(type));
  }
  out->type = static_cast<WalRecordType>(type);
  uint32_t name_len = 0;
  GDLOG_RETURN_IF_ERROR(r.ReadU32(&name_len));
  std::string_view name;
  GDLOG_RETURN_IF_ERROR(r.ReadBytes(name_len, &name));
  out->name.assign(name);
  GDLOG_RETURN_IF_ERROR(r.ReadU32(&out->arity));
  out->tuple.clear();
  if (out->type != WalRecordType::kCreateRelation) {
    out->tuple.resize(out->arity);
    for (uint32_t i = 0; i < out->arity; ++i) {
      GDLOG_RETURN_IF_ERROR(r.ReadValue(store, &out->tuple[i]));
    }
  }
  if (!r.AtEnd()) return CorruptStatus("trailing bytes in record body");
  return Status::OK();
}

std::string EncodeHeader(uint64_t wal_seq) {
  std::string h(kWalMagic);
  h.push_back('\0');
  AppendU64(&h, wal_seq);
  return h;
}

}  // namespace

// -- Writer ------------------------------------------------------------------

Status WalWriter::Open(const std::string& path, uint64_t wal_seq,
                       uint64_t valid_size) {
  failed_ = Status::OK();
  uint64_t on_disk = 0;
  GDLOG_ASSIGN_OR_RETURN(file_, OpenAppend(path, &on_disk));
  if (on_disk < kWalHeaderSize || valid_size < kWalHeaderSize) {
    // Fresh file, or a crash mid-creation left a partial header: start
    // the log over (an unreadable header means no records survived).
    if (on_disk != 0) {
      GDLOG_RETURN_IF_ERROR(TruncateFile(file_, 0));
    }
    const std::string header = EncodeHeader(wal_seq);
    GDLOG_RETURN_IF_ERROR(WriteFully(file_, header.data(), header.size(), 0));
    size_ = header.size();
    unsynced_bytes_ += header.size();
    return Status::OK();
  }
  if (on_disk > valid_size) {
    // Drop the torn tail recovery identified, so new appends land right
    // after the last valid record (O_APPEND writes at the new end).
    GDLOG_RETURN_IF_ERROR(TruncateFile(file_, valid_size));
    GDLOG_RETURN_IF_ERROR(Fsync(file_));
  }
  size_ = valid_size;
  return Status::OK();
}

Status WalWriter::Append(const ValueStore& store, WalRecordType type,
                         std::string_view name, uint32_t arity,
                         TupleView tuple) {
  if (!file_.open()) {
    return Status::RuntimeError("[GD210] WAL append on closed log");
  }
  GDLOG_RETURN_IF_ERROR(failed_);
  const std::string body = EncodeBody(store, type, name, arity, tuple);
  std::string rec;
  rec.reserve(8 + body.size());
  AppendU32(&rec, Crc32(body.data(), body.size()));
  AppendU32(&rec, static_cast<uint32_t>(body.size()));
  rec += body;

  if (options_.injector != nullptr &&
      options_.injector->Hit(FaultInjector::kWalAppend)) {
    // Simulate a torn write: a prefix of the record reaches the file,
    // then the append fails. size_ is NOT advanced, so recovery (and a
    // reopened writer) treats the prefix as garbage past the valid end.
    // The torn bytes sit at the physical EOF, where O_APPEND would put
    // the next record AFTER them and recovery — which stops at the
    // first bad checksum — would then drop every later (acknowledged,
    // even fsync'd) append. A crashed process cannot keep appending;
    // neither do we: the writer latches until reopened.
    const size_t torn = rec.size() / 2;
    (void)WriteFully(file_, rec.data(), torn, size_);
    failed_ = Status::RuntimeError(
        "[GD210] WAL '" + file_.path() + "' closed to appends: torn write at "
        "offset " + std::to_string(size_) + "; reopen to recover");
    return Status::RuntimeError(
        "[GD210] injected WAL append fault for '" + file_.path() +
        "' at offset " + std::to_string(size_) + " (torn write of " +
        std::to_string(torn) + "/" + std::to_string(rec.size()) + " bytes)");
  }

  const Status write = WriteFully(file_, rec.data(), rec.size(), size_);
  if (!write.ok()) {
    // A real partial write (ENOSPC, I/O error) leaves garbage at the
    // physical EOF. Restore EOF == size_ so later appends land where
    // recovery will look for them; if even that fails, latch the writer
    // so no append can ever follow the garbage.
    const Status trunc = TruncateFile(file_, size_);
    if (!trunc.ok()) {
      failed_ = Status::RuntimeError(
          "[GD210] WAL '" + file_.path() + "' closed to appends: failed "
          "append left untruncatable bytes at offset " +
          std::to_string(size_) + " (" + trunc.message() +
          "); reopen to recover");
    }
    return write;
  }
  size_ += rec.size();
  unsynced_bytes_ += rec.size();
  ++appends_;
  bytes_appended_ += rec.size();

  if (options_.fsync == FsyncPolicy::kAlways ||
      (options_.fsync == FsyncPolicy::kBatch &&
       unsynced_bytes_ >= options_.batch_bytes)) {
    return Sync();
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (!file_.open() || unsynced_bytes_ == 0) return Status::OK();
  if (options_.fsync == FsyncPolicy::kOff) {
    unsynced_bytes_ = 0;  // the OS owns flushing; nothing to account
    return Status::OK();
  }
  if (options_.injector != nullptr &&
      options_.injector->Hit(FaultInjector::kWalFsync)) {
    return Status::RuntimeError("[GD210] injected WAL fsync fault for '" +
                                file_.path() + "'");
  }
  GDLOG_RETURN_IF_ERROR(Fsync(file_));
  unsynced_bytes_ = 0;
  ++fsyncs_;
  return Status::OK();
}

Status WalWriter::Close() {
  if (!file_.open()) return Status::OK();
  Status sync = Sync();
  Status close = file_.Close();
  GDLOG_RETURN_IF_ERROR(sync);
  return close;
}

// -- Reader ------------------------------------------------------------------

Result<WalScan> ReadWal(const std::string& path, uint64_t expected_seq,
                        ValueStore* store) {
  WalScan scan;
  if (!FileExists(path)) return scan;

  std::string bytes;
  GDLOG_RETURN_IF_ERROR(ReadWholeFile(path, &bytes));
  if (bytes.size() < kWalHeaderSize) {
    // A header never hits the disk partially in normal operation (it is
    // the first write to a fresh file), but a crash during creation can
    // leave one; treat it as an empty log.
    scan.tail_dropped = !bytes.empty();
    scan.dropped_bytes = bytes.size();
    return scan;
  }
  if (std::string_view(bytes.data(), kWalMagic.size()) != kWalMagic ||
      bytes[kWalMagic.size()] != '\0') {
    return CorruptStatus("bad WAL magic in '" + path + "'");
  }
  ByteReader header{bytes.data(), bytes.size(), kWalMagic.size() + 1};
  uint64_t seq = 0;
  GDLOG_RETURN_IF_ERROR(header.ReadU64(&seq));
  if (seq != expected_seq) {
    return CorruptStatus("WAL sequence mismatch in '" + path + "': log has " +
                         std::to_string(seq) + ", manifest expects " +
                         std::to_string(expected_seq));
  }

  size_t pos = kWalHeaderSize;
  scan.valid_size = pos;
  while (pos < bytes.size()) {
    ByteReader r{bytes.data(), bytes.size(), pos};
    uint32_t crc = 0, len = 0;
    if (!r.ReadU32(&crc).ok() || !r.ReadU32(&len).ok() ||
        bytes.size() - r.pos < len) {
      break;  // truncated frame: end of the valid prefix
    }
    const std::string_view body(bytes.data() + r.pos, len);
    if (Crc32(body.data(), body.size()) != crc) break;  // torn record
    WalRecord rec;
    if (!DecodeBody(body, store, &rec).ok()) break;  // undecodable body
    scan.records.push_back(std::move(rec));
    pos = r.pos + len;
    scan.valid_size = pos;
  }
  scan.dropped_bytes = bytes.size() - scan.valid_size;
  scan.tail_dropped = scan.dropped_bytes > 0;
  return scan;
}

}  // namespace gdlog
