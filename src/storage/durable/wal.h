// Write-ahead log of catalog mutations, append-only and CRC-checked.
//
// File layout (`wal-<seq>.log`):
//
//   header   "GDWAL1\n\0"  u64 wal_seq
//   record*  u32 crc32(type+payload)  u32 len(type+payload)  u8 type  payload
//
// All integers are little-endian fixed width. Three record types:
//
//   kAddFact / kRetract   u32 name_len, name, u32 arity, arity x Value
//   kCreateRelation       u32 name_len, name, u32 arity
//
// Values serialize self-contained (symbols by name, terms recursively),
// so a WAL replays into any fresh ValueStore. Recovery reads records
// until the first torn/truncated/checksum-failing one and treats that
// point as end-of-log (redo-only, ARIES-style): a crash mid-append can
// only lose the record being written, never corrupt earlier ones. The
// writer truncates the recovered log back to its valid prefix before
// appending again.
//
// Fsync policy: `always` syncs after every append; `batch` syncs once
// per `batch_bytes` appended (and on checkpoint/close); `off` leaves
// flushing to the OS. FaultInjector probes `wal.append` (torn write:
// only a prefix of the record reaches the file) and `wal.fsync`
// (injected sync failure) exercise both failure paths deterministically.
#ifndef GDLOG_STORAGE_DURABLE_WAL_H_
#define GDLOG_STORAGE_DURABLE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/durable/io.h"
#include "storage/tuple.h"
#include "value/value.h"

namespace gdlog {

class FaultInjector;

enum class FsyncPolicy : uint8_t { kAlways = 0, kBatch = 1, kOff = 2 };

/// "always" / "batch" / "off".
std::string_view FsyncPolicyName(FsyncPolicy p);
/// Parses a policy name; InvalidArgument on anything else.
Result<FsyncPolicy> ParseFsyncPolicy(std::string_view name);

enum class WalRecordType : uint8_t {
  kAddFact = 1,
  kRetract = 2,
  kCreateRelation = 3,
};

/// One decoded WAL record. `tuple` is empty for kCreateRelation.
struct WalRecord {
  WalRecordType type = WalRecordType::kAddFact;
  std::string name;
  uint32_t arity = 0;
  std::vector<Value> tuple;
};

// -- Byte codec shared by the WAL and the snapshot writer -------------------

void AppendU32(std::string* buf, uint32_t v);
void AppendU64(std::string* buf, uint64_t v);
void AppendBytes(std::string* buf, std::string_view s);
/// Serializes one value: u8 tag, then int payload / symbol name /
/// functor + args recursively.
void AppendValue(std::string* buf, const ValueStore& store, Value v);

/// Cursor over an in-memory byte span; every Read* fails with
/// RuntimeError("[GD211] ...") instead of reading past the end.
struct ByteReader {
  const char* data = nullptr;
  size_t size = 0;
  size_t pos = 0;

  bool AtEnd() const { return pos >= size; }
  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadBytes(size_t n, std::string_view* s);
  /// `depth` is the current term-nesting level; decoding refuses values
  /// nested deeper than kMaxValueNesting so a crafted (CRC-valid) record
  /// reports corruption instead of overflowing the stack.
  Status ReadValue(ValueStore* store, Value* v, int depth = 0);
};

/// Deepest term nesting the codec will decode. Far above anything the
/// engine asserts as an EDB fact, far below stack-overflow territory.
inline constexpr int kMaxValueNesting = 256;

// -- Writer ------------------------------------------------------------------

class WalWriter {
 public:
  struct Options {
    FsyncPolicy fsync = FsyncPolicy::kBatch;
    uint64_t batch_bytes = 1 << 20;  // sync cadence under kBatch
    FaultInjector* injector = nullptr;
  };

  WalWriter() = default;

  /// Opens `path` for appending. When the file is empty a fresh header
  /// with `wal_seq` is written; otherwise the caller has already
  /// recovered the file and passes the valid prefix length through
  /// `valid_size` — anything after it (a torn tail) is truncated away.
  Status Open(const std::string& path, uint64_t wal_seq, uint64_t valid_size);

  /// Appends one record (write-ahead: call before mutating the store).
  /// Under FsyncPolicy::kAlways the record is also synced. The
  /// `wal.append` probe turns this into a torn write: a prefix of the
  /// record reaches the file and the append fails with [GD210].
  ///
  /// A failed append never lets a later one land after garbage: a real
  /// partial write is truncated back to the valid size, and when that is
  /// impossible (or the failure was a simulated crash) the writer
  /// latches — every further Append fails with [GD210] until Open().
  Status Append(const ValueStore& store, WalRecordType type,
                std::string_view name, uint32_t arity, TupleView tuple);

  /// Syncs outstanding appends (no-op under kOff or when clean).
  Status Sync();

  /// Sync (policy permitting) and close the file.
  Status Close();

  bool open() const { return file_.open(); }
  uint64_t size_bytes() const { return size_; }
  uint64_t appends() const { return appends_; }
  uint64_t fsyncs() const { return fsyncs_; }
  uint64_t bytes_appended() const { return bytes_appended_; }

  void set_options(const Options& o) { options_ = o; }

 private:
  Options options_;
  FileHandle file_;
  Status failed_;                // latched after an unrecoverable append
  uint64_t size_ = 0;            // valid bytes in the file
  uint64_t unsynced_bytes_ = 0;  // appended since the last fsync
  uint64_t appends_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t bytes_appended_ = 0;
};

// -- Reader ------------------------------------------------------------------

/// Result of scanning one WAL file: the decoded records of the valid
/// prefix, where that prefix ends, and whether a torn/corrupt tail was
/// dropped (with how many bytes).
struct WalScan {
  std::vector<WalRecord> records;
  uint64_t valid_size = 0;     // byte offset recovery may append from
  uint64_t dropped_bytes = 0;  // bytes after the first bad record
  bool tail_dropped = false;
};

/// Reads `path`, verifies the header carries `expected_seq`, and decodes
/// records until EOF or the first invalid one (short header/record or
/// CRC mismatch — both are treated as the end of the log, per the
/// redo-only recovery contract). A missing file yields an empty scan
/// with valid_size 0. Hard failures (unreadable file, wrong magic or
/// sequence number) return [GD211].
Result<WalScan> ReadWal(const std::string& path, uint64_t expected_seq,
                        ValueStore* store);

/// The WAL header size (magic + sequence number), exposed for tests
/// that truncate files at precise byte boundaries.
inline constexpr uint64_t kWalHeaderSize = 16;
inline constexpr std::string_view kWalMagic = "GDWAL1\n";  // + NUL = 8 bytes

}  // namespace gdlog

#endif  // GDLOG_STORAGE_DURABLE_WAL_H_
