// POSIX file primitives for the durability layer: every call retries
// EINTR, converts errno failures into Status carrying the failing path
// (and, for positional I/O, the offset), and never throws.
//
// The durability code builds its crash-consistency story out of exactly
// four idioms, all provided here:
//
//   - append + fsync            (WAL records)
//   - write temp + fsync + rename + fsync(dir)   (snapshot / MANIFEST)
//   - read fully, tolerate short reads at EOF    (recovery)
//   - CRC32 over every persisted payload         (torn-write detection)
//
// Failures come back as Status with the [GD210] WAL-error code attached
// by the callers that know which artifact was being touched.
#ifndef GDLOG_STORAGE_DURABLE_IO_H_
#define GDLOG_STORAGE_DURABLE_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gdlog {

/// CRC-32 (ISO-HDLC polynomial 0xEDB88320, the zlib/PNG variant) over a
/// byte span, optionally continuing a running checksum: pass the previous
/// return value as `seed` to checksum data arriving in pieces.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// A file descriptor with RAII close (close errors on the destructor
/// path are swallowed; call Close() to observe them).
class FileHandle {
 public:
  FileHandle() = default;
  FileHandle(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~FileHandle();

  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;
  FileHandle(FileHandle&& o) noexcept;
  FileHandle& operator=(FileHandle&& o) noexcept;

  bool open() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  const std::string& path() const { return path_; }

  /// close(2) with EINTR handling; the handle is empty afterwards either
  /// way (retrying close after EINTR is unsafe on Linux).
  Status Close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// open(2) for appending, creating the file if needed. Returns the size
/// the file had on open through `size` (append offset bookkeeping).
Result<FileHandle> OpenAppend(const std::string& path, uint64_t* size);
/// open(2) read-only.
Result<FileHandle> OpenRead(const std::string& path);
/// open(2) write-only, O_CREAT | O_TRUNC (temp artifacts to be renamed).
Result<FileHandle> OpenTrunc(const std::string& path);

/// write(2) until done, retrying EINTR and short writes. `offset` is
/// only used for the error message.
Status WriteFully(const FileHandle& f, const void* data, size_t len,
                  uint64_t offset);

/// pread(2) until `len` bytes or EOF, retrying EINTR. Returns the byte
/// count actually read (short at EOF is not an error).
Result<size_t> ReadAt(const FileHandle& f, void* data, size_t len,
                      uint64_t offset);

/// fsync(2) with EINTR retry.
Status Fsync(const FileHandle& f);
/// Opens `dir`, fsyncs it, closes it — makes a rename or create in that
/// directory durable.
Status FsyncDir(const std::string& dir);

/// rename(2), EINTR-retried.
Status RenameFile(const std::string& from, const std::string& to);
/// unlink(2); a missing file is not an error.
Status RemoveFile(const std::string& path);
/// ftruncate(2), EINTR-retried.
Status TruncateFile(const FileHandle& f, uint64_t size);
/// mkdir(2); an existing directory is not an error.
Status EnsureDir(const std::string& dir);
/// stat(2)-based existence + size probe; false when absent.
bool FileExists(const std::string& path, uint64_t* size = nullptr);
/// Reads a whole (small) file into `out`.
Status ReadWholeFile(const std::string& path, std::string* out);

}  // namespace gdlog

#endif  // GDLOG_STORAGE_DURABLE_IO_H_
