// Tuple views and owned tuples. Relations store rows as flat Value
// arrays; a TupleView is a non-owning span over one row.
#ifndef GDLOG_STORAGE_TUPLE_H_
#define GDLOG_STORAGE_TUPLE_H_

#include <span>
#include <string>
#include <vector>

#include "common/hash.h"
#include "value/value.h"

namespace gdlog {

using TupleView = std::span<const Value>;
using OwnedTuple = std::vector<Value>;

/// Content hash of a row (order-dependent).
inline uint64_t HashTuple(TupleView t) {
  uint64_t h = 0x9e3779b97f4a7c15ull ^ t.size();
  for (Value v : t) h = HashCombine(h, v.Hash());
  return h;
}

inline bool TupleEquals(TupleView a, TupleView b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// Renders a row as "(v1, v2, ...)" for debugging and golden tests.
std::string TupleToString(const ValueStore& store, TupleView t);

}  // namespace gdlog

#endif  // GDLOG_STORAGE_TUPLE_H_
