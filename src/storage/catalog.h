// Catalog: maps predicate name/arity pairs to Relation storage.
//
// A predicate is identified by (name, arity) — p/2 and p/3 are distinct,
// as in standard Datalog practice.
#ifndef GDLOG_STORAGE_CATALOG_H_
#define GDLOG_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace gdlog {

using PredicateId = uint32_t;
inline constexpr PredicateId kNoPredicate = UINT32_MAX;

class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Returns the id for predicate name/arity, creating its relation on
  /// first sight.
  PredicateId Ensure(std::string_view name, uint32_t arity);

  /// Returns the id or kNoPredicate.
  PredicateId Lookup(std::string_view name, uint32_t arity) const;

  Relation& relation(PredicateId id) { return *relations_[id]; }
  const Relation& relation(PredicateId id) const { return *relations_[id]; }

  size_t size() const { return relations_.size(); }

  /// "name/arity" display string for diagnostics.
  std::string DisplayName(PredicateId id) const;

  /// Charges every relation (existing and future) to `budget`, which
  /// must outlive the catalog.
  void set_memory_budget(MemoryBudget* budget);

  /// Turns on the provenance side-column on every relation, existing and
  /// future (see Relation::EnableProvenance).
  void EnableProvenance();
  bool provenance_enabled() const { return provenance_; }

 private:
  static std::string Key(std::string_view name, uint32_t arity);

  std::unordered_map<std::string, PredicateId> by_name_;
  std::vector<std::unique_ptr<Relation>> relations_;
  MemoryBudget* budget_ = nullptr;
  bool provenance_ = false;
};

}  // namespace gdlog

#endif  // GDLOG_STORAGE_CATALOG_H_
