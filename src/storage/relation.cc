#include "storage/relation.h"

#include "common/logging.h"

namespace gdlog {

Relation::Relation(std::string name, uint32_t arity)
    : name_(std::move(name)), arity_(arity) {
  set_buckets_.assign(64, kNoRow);
  set_mask_ = set_buckets_.size() - 1;
}

void Relation::RehashSet(size_t new_bucket_count) {
  set_buckets_.assign(new_bucket_count, kNoRow);
  set_mask_ = new_bucket_count - 1;
  for (RowId r = 0; r < num_rows_; ++r) {
    size_t slot = row_hashes_[r] & set_mask_;
    while (set_buckets_[slot] != kNoRow) slot = (slot + 1) & set_mask_;
    set_buckets_[slot] = r;
  }
}

Relation::InsertResult Relation::Insert(TupleView tuple) {
  GDLOG_CHECK_EQ(tuple.size(), arity_);
  const uint64_t h = HashTuple(tuple);
  size_t slot = h & set_mask_;
  while (set_buckets_[slot] != kNoRow) {
    const RowId r = set_buckets_[slot];
    if (row_hashes_[r] == h && TupleEquals(Row(r), tuple)) {
      return {r, false};
    }
    slot = (slot + 1) & set_mask_;
  }
  const auto row = static_cast<RowId>(num_rows_);
  // `tuple` may alias data_ (copying a row of this relation); stage it
  // locally so the potentially-reallocating insert is safe.
  Value local[16];
  std::vector<Value> heap_local;
  TupleView staged = tuple;
  if (tuple.size() <= 16) {
    for (size_t i = 0; i < tuple.size(); ++i) local[i] = tuple[i];
    staged = TupleView(local, tuple.size());
  } else {
    heap_local.assign(tuple.begin(), tuple.end());
    staged = TupleView(heap_local.data(), heap_local.size());
  }
  data_.insert(data_.end(), staged.begin(), staged.end());
  row_hashes_.push_back(h);
  ++num_rows_;
  set_buckets_[slot] = row;
  if (num_rows_ * 10 > set_buckets_.size() * 7) RehashSet(set_buckets_.size() * 2);
  for (auto& idx : indices_) idx->Insert(row, Row(row));
  RecountMemory();
  return {row, true};
}

bool Relation::Retract(TupleView tuple) {
  GDLOG_CHECK(indices_.empty() && delta_end_ == 0)
      << "Retract is only valid before evaluation";
  const RowId row = Find(tuple);
  if (row == kNoRow) return false;
  // Shift-erase keeps the remaining rows in insertion order; the dedup
  // set is rebuilt because every row id after `row` changes.
  data_.erase(data_.begin() + static_cast<size_t>(row) * arity_,
              data_.begin() + (static_cast<size_t>(row) + 1) * arity_);
  row_hashes_.erase(row_hashes_.begin() + row);
  --num_rows_;
  if (prov_ != nullptr && row < prov_->rule.size()) {
    if (prov_->rule[row] != kUnknownRule) --prov_->annotated;
    prov_->rule.erase(prov_->rule.begin() + row);
    prov_->span_begin.erase(prov_->span_begin.begin() + row);
    prov_->span_len.erase(prov_->span_len.begin() + row);
  }
  RehashSet(set_buckets_.size());
  RecountMemory();
  return true;
}

void Relation::set_memory_budget(MemoryBudget* budget) {
  budget_ = budget;
  RecountMemory();
}

size_t Relation::ApproxBytes() const {
  size_t bytes = data_.capacity() * sizeof(Value) +
                 row_hashes_.capacity() * sizeof(uint64_t) +
                 set_buckets_.capacity() * sizeof(uint32_t);
  if (prov_ != nullptr) {
    bytes += prov_->rule.capacity() * sizeof(uint32_t) +
             prov_->span_begin.capacity() * sizeof(uint32_t) +
             prov_->span_len.capacity() * sizeof(uint32_t) +
             prov_->pool.capacity() * sizeof(ProvPremise);
  }
  for (const auto& idx : indices_) bytes += idx->ApproxBytes();
  return bytes;
}

void Relation::EnableProvenance() {
  if (prov_ == nullptr) prov_ = std::make_unique<ProvColumn>();
}

void Relation::Annotate(RowId row, uint32_t rule_index,
                        const ProvPremise* premises, size_t num_premises) {
  if (prov_ == nullptr || row >= num_rows_) return;
  if (prov_->rule.size() <= row) {
    prov_->rule.resize(num_rows_, kUnknownRule);
    prov_->span_begin.resize(num_rows_, 0);
    prov_->span_len.resize(num_rows_, 0);
  }
  if (prov_->rule[row] != kUnknownRule) return;  // first derivation wins
  prov_->rule[row] = rule_index;
  prov_->span_begin[row] = static_cast<uint32_t>(prov_->pool.size());
  prov_->span_len[row] = static_cast<uint32_t>(num_premises);
  prov_->pool.insert(prov_->pool.end(), premises, premises + num_premises);
  ++prov_->annotated;
  RecountMemory();
}

Relation::ProvView Relation::ProvenanceOf(RowId row) const {
  ProvView v;
  if (prov_ == nullptr || row >= prov_->rule.size()) return v;
  v.rule_index = prov_->rule[row];
  if (v.rule_index == kUnknownRule) return v;
  v.premises = prov_->pool.data() + prov_->span_begin[row];
  v.num_premises = prov_->span_len[row];
  return v;
}

size_t Relation::provenance_rows() const {
  return prov_ == nullptr ? 0 : prov_->annotated;
}

size_t Relation::provenance_premises() const {
  return prov_ == nullptr ? 0 : prov_->pool.size();
}

void Relation::RecountMemory() {
  if (budget_ == nullptr) return;
  budget_->Update(&charged_bytes_, ApproxBytes());
}

RowId Relation::Find(TupleView tuple) const {
  if (tuple.size() != arity_) return kNoRow;
  const uint64_t h = HashTuple(tuple);
  size_t slot = h & set_mask_;
  while (set_buckets_[slot] != kNoRow) {
    const RowId r = set_buckets_[slot];
    if (row_hashes_[r] == h && TupleEquals(Row(r), tuple)) return r;
    slot = (slot + 1) & set_mask_;
  }
  return kNoRow;
}

bool Relation::Contains(TupleView tuple) const { return Find(tuple) != kNoRow; }

size_t Relation::AdvanceEpoch() {
  delta_begin_ = delta_end_;
  delta_end_ = static_cast<RowId>(num_rows_);
  return delta_end_ - delta_begin_;
}

void Relation::SealEpoch() {
  delta_begin_ = static_cast<RowId>(num_rows_);
  delta_end_ = delta_begin_;
}

size_t Relation::EnsureIndex(const std::vector<uint32_t>& columns) {
  for (size_t i = 0; i < indices_.size(); ++i) {
    if (indices_[i]->columns() == columns) return i;
  }
  auto idx = std::make_unique<Index>(columns);
  for (RowId r = 0; r < num_rows_; ++r) idx->Insert(r, Row(r));
  indices_.push_back(std::move(idx));
  RecountMemory();
  return indices_.size() - 1;
}

}  // namespace gdlog
