#include "storage/catalog.h"

namespace gdlog {

std::string Catalog::Key(std::string_view name, uint32_t arity) {
  std::string k(name);
  k += '/';
  k += std::to_string(arity);
  return k;
}

PredicateId Catalog::Ensure(std::string_view name, uint32_t arity) {
  const std::string key = Key(name, arity);
  auto it = by_name_.find(key);
  if (it != by_name_.end()) return it->second;
  const auto id = static_cast<PredicateId>(relations_.size());
  relations_.push_back(std::make_unique<Relation>(std::string(name), arity));
  if (budget_ != nullptr) relations_.back()->set_memory_budget(budget_);
  if (provenance_) relations_.back()->EnableProvenance();
  by_name_.emplace(key, id);
  return id;
}

void Catalog::set_memory_budget(MemoryBudget* budget) {
  budget_ = budget;
  for (auto& rel : relations_) rel->set_memory_budget(budget);
}

void Catalog::EnableProvenance() {
  provenance_ = true;
  for (auto& rel : relations_) rel->EnableProvenance();
}

PredicateId Catalog::Lookup(std::string_view name, uint32_t arity) const {
  auto it = by_name_.find(Key(name, arity));
  return it == by_name_.end() ? kNoPredicate : it->second;
}

std::string Catalog::DisplayName(PredicateId id) const {
  const Relation& r = *relations_[id];
  return r.name() + "/" + std::to_string(r.arity());
}

}  // namespace gdlog
