#include "storage/index.h"

#include "common/logging.h"

namespace gdlog {

Index::Index(std::vector<uint32_t> columns) : columns_(std::move(columns)) {
  buckets_.assign(64, kNoRow);
  tails_.assign(64, kNoRow);
  bucket_mask_ = buckets_.size() - 1;
}

uint64_t Index::HashRowKey(TupleView tuple) const {
  uint64_t h = 0xabcdef0123456789ull ^ columns_.size();
  for (uint32_t c : columns_) {
    GDLOG_CHECK_LT(c, tuple.size());
    h = HashCombine(h, tuple[c].Hash());
  }
  return h;
}

void Index::Rehash(size_t new_bucket_count) {
  buckets_.assign(new_bucket_count, kNoRow);
  tails_.assign(new_bucket_count, kNoRow);
  bucket_mask_ = new_bucket_count - 1;
  // Rebuild chains forward, appending at the tail — the same
  // insertion-order discipline as Insert, so a rehash never changes the
  // order a probe enumerates its matches in.
  for (size_t e = 0; e < rows_.size(); ++e) {
    Link(static_cast<uint32_t>(e), hashes_[e] & bucket_mask_);
  }
}

void Index::Link(uint32_t entry, size_t slot) {
  next_[entry] = kNoRow;
  if (buckets_[slot] == kNoRow) {
    buckets_[slot] = entry;
  } else {
    next_[tails_[slot]] = entry;
  }
  tails_[slot] = entry;
}

void Index::Insert(RowId row, TupleView tuple) {
  const uint64_t h = HashRowKey(tuple);
  const auto entry = static_cast<uint32_t>(rows_.size());
  rows_.push_back(row);
  hashes_.push_back(h);
  next_.push_back(kNoRow);
  Link(entry, h & bucket_mask_);
  if (rows_.size() * 10 > buckets_.size() * 7) Rehash(buckets_.size() * 2);
}

}  // namespace gdlog
