#include "storage/tuple.h"

#include <sstream>

namespace gdlog {

std::string TupleToString(const ValueStore& store, TupleView t) {
  std::ostringstream out;
  out << "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i) out << ", ";
    out << store.ToString(t[i]);
  }
  out << ")";
  return out.str();
}

}  // namespace gdlog
