#include "ast/builder.h"

namespace gdlog {

TermNode V(std::string name) { return TermNode::Var(std::move(name)); }

TermNode C(int64_t v) { return TermNode::Const(Value::Int(v)); }

TermNode Sym(ValueStore* store, std::string_view name) {
  return TermNode::Const(store->MakeSymbol(name));
}

TermNode NilTerm() { return TermNode::Const(Value::Nil()); }

TermNode Tup(std::vector<TermNode> args) {
  return TermNode::Tuple(std::move(args));
}

TermNode Fn(std::string functor, std::vector<TermNode> args) {
  return TermNode::Compound(std::move(functor), std::move(args));
}

Literal Atom(std::string pred, std::vector<TermNode> args) {
  return Literal::Atom(std::move(pred), std::move(args), /*neg=*/false);
}

Literal NegAtom(std::string pred, std::vector<TermNode> args) {
  return Literal::Atom(std::move(pred), std::move(args), /*neg=*/true);
}

Rule MakeRule(Literal head, std::vector<Literal> body) {
  Rule r;
  r.head = std::move(head);
  r.body = std::move(body);
  return r;
}

Rule Fact(std::string pred, std::vector<TermNode> args) {
  return MakeRule(Atom(std::move(pred), std::move(args)), {});
}

}  // namespace gdlog
