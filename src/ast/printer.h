// Pretty printer for programs, rules, literals, and terms.
//
// Output round-trips through the parser (tested), and matches the paper's
// surface syntax: `head <- goal, goal, ... .`
#ifndef GDLOG_AST_PRINTER_H_
#define GDLOG_AST_PRINTER_H_

#include <string>

#include "ast/ast.h"

namespace gdlog {

std::string TermToString(const ValueStore& store, const TermNode& t);
std::string LiteralToString(const ValueStore& store, const Literal& l);
std::string RuleToString(const ValueStore& store, const Rule& r);
std::string ProgramToString(const ValueStore& store, const Program& p);

}  // namespace gdlog

#endif  // GDLOG_AST_PRINTER_H_
