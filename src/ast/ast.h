// Abstract syntax for the choice-Datalog language of the paper.
//
// A program is a list of rules; a fact is a rule with empty body and
// ground head. Rule bodies mix:
//
//   * positive / negated atoms            g(X,Y,C), not visited(Y)
//   * negated conjunctions                not (subtree(X,L), L < I)
//     (the NOT EXISTS form needed by Example 6's feasible rule)
//   * comparison builtins                 J < I, X != Y, C = C1 + C2
//   * the paper's meta-level predicates   choice(Y,(X,C)), least(C,I),
//                                         most(J,X), next(I)
//
// Terms are variables, constants, or compound terms. Compound terms with
// arithmetic functors (+ - * / mod min max) are evaluated; any other
// functor constructs an interned ground term (e.g. Huffman's t(X,Y)).
#ifndef GDLOG_AST_AST_H_
#define GDLOG_AST_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "value/value.h"

namespace gdlog {

// ---------------------------------------------------------------------------
// Source locations
// ---------------------------------------------------------------------------

/// 1-based position of a syntactic construct in the program text. The
/// parser stamps every rule and literal with the location of its first
/// token; programmatically-built ASTs leave locations invalid (0,0).
struct SourceLoc {
  int line = 0;
  int column = 0;

  bool valid() const { return line > 0; }
  /// "line L, column C" (or "unknown location").
  std::string ToString() const;
  bool operator==(const SourceLoc&) const = default;
};

// ---------------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------------

enum class TermKind : uint8_t {
  kVariable,  // X, Cost, _G17 — or the anonymous "_"
  kConstant,  // 42, a, nil, "text"
  kCompound,  // t(X, Y), (X, C)  [tuple = reserved functor "$tuple"], J + 1
};

struct TermNode {
  TermKind kind;
  // kVariable: the variable's name ("_" was renamed apart by the parser).
  // kCompound: the functor name ("$tuple" for (..) tuples; "+","-","*",
  //            "/","mod","min","max" are the arithmetic functors).
  std::string name;
  Value constant;  // kConstant only
  std::vector<TermNode> args;  // kCompound only

  static TermNode Var(std::string n) {
    TermNode t;
    t.kind = TermKind::kVariable;
    t.name = std::move(n);
    return t;
  }
  static TermNode Const(Value v) {
    TermNode t;
    t.kind = TermKind::kConstant;
    t.constant = v;
    return t;
  }
  static TermNode Compound(std::string functor, std::vector<TermNode> as) {
    TermNode t;
    t.kind = TermKind::kCompound;
    t.name = std::move(functor);
    t.args = std::move(as);
    return t;
  }
  static TermNode Tuple(std::vector<TermNode> as) {
    return Compound("$tuple", std::move(as));
  }

  bool is_var() const { return kind == TermKind::kVariable; }
  bool is_const() const { return kind == TermKind::kConstant; }
  bool is_compound() const { return kind == TermKind::kCompound; }
  bool is_tuple() const { return is_compound() && name == "$tuple"; }
};

/// True for the functors evaluated as arithmetic rather than constructed.
bool IsArithmeticFunctor(const std::string& name);

/// Appends the names of all variables in `t` (with repeats) to `out`.
void CollectVariables(const TermNode& t, std::vector<std::string>* out);

/// Structural equality of term ASTs.
bool TermEquals(const TermNode& a, const TermNode& b);

// ---------------------------------------------------------------------------
// Literals
// ---------------------------------------------------------------------------

enum class ComparisonOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view ComparisonOpName(ComparisonOp op);
/// The comparison with swapped operands (kLt -> kGt etc.).
ComparisonOp FlipComparison(ComparisonOp op);
/// The negated comparison (kLt -> kGe etc.).
ComparisonOp NegateComparison(ComparisonOp op);

enum class LiteralKind : uint8_t {
  kAtom,        // p(t1,...,tn), possibly negated
  kNotExists,   // not (L1, ..., Lk): negated conjunction
  kComparison,  // t1 OP t2
  kChoice,      // choice(Left, Right): FD Left -> Right
  kLeast,       // least(Cost, Group)
  kMost,        // most(Cost, Group)
  kNext,        // next(I)
};

struct Literal {
  LiteralKind kind;

  // Location of the literal's first token (invalid for synthesized
  // literals, e.g. rewriter output).
  SourceLoc loc;

  // kAtom
  std::string predicate;
  std::vector<TermNode> args;
  bool negated = false;

  // kNotExists
  std::vector<Literal> body;  // the conjunction under the negation

  // kComparison
  ComparisonOp op = ComparisonOp::kEq;
  // lhs/rhs live in args[0]/args[1].

  // kChoice: args[0] = Left tuple/var, args[1] = Right tuple/var.
  // kLeast/kMost: args[0] = cost term (a variable), args[1] = group term
  //   (a variable, a tuple of variables, or the empty tuple `()`).
  // kNext: args[0] = the stage variable.

  static Literal Atom(std::string pred, std::vector<TermNode> as,
                      bool neg = false) {
    Literal l;
    l.kind = LiteralKind::kAtom;
    l.predicate = std::move(pred);
    l.args = std::move(as);
    l.negated = neg;
    return l;
  }
  static Literal NotExists(std::vector<Literal> conj) {
    Literal l;
    l.kind = LiteralKind::kNotExists;
    l.body = std::move(conj);
    return l;
  }
  static Literal Comparison(ComparisonOp op, TermNode lhs, TermNode rhs) {
    Literal l;
    l.kind = LiteralKind::kComparison;
    l.op = op;
    l.args.push_back(std::move(lhs));
    l.args.push_back(std::move(rhs));
    return l;
  }
  static Literal Choice(TermNode left, TermNode right) {
    Literal l;
    l.kind = LiteralKind::kChoice;
    l.args.push_back(std::move(left));
    l.args.push_back(std::move(right));
    return l;
  }
  static Literal Least(TermNode cost, TermNode group) {
    Literal l;
    l.kind = LiteralKind::kLeast;
    l.args.push_back(std::move(cost));
    l.args.push_back(std::move(group));
    return l;
  }
  static Literal Most(TermNode cost, TermNode group) {
    Literal l;
    l.kind = LiteralKind::kMost;
    l.args.push_back(std::move(cost));
    l.args.push_back(std::move(group));
    return l;
  }
  static Literal Next(TermNode var) {
    Literal l;
    l.kind = LiteralKind::kNext;
    l.args.push_back(std::move(var));
    return l;
  }

  bool is_positive_atom() const {
    return kind == LiteralKind::kAtom && !negated;
  }
  bool is_negated_atom() const { return kind == LiteralKind::kAtom && negated; }
  bool is_meta() const {
    return kind == LiteralKind::kChoice || kind == LiteralKind::kLeast ||
           kind == LiteralKind::kMost || kind == LiteralKind::kNext;
  }
};

// ---------------------------------------------------------------------------
// Rules and programs
// ---------------------------------------------------------------------------

struct Rule {
  Literal head;  // always a positive kAtom
  std::vector<Literal> body;
  // Location of the rule's first token (the head predicate name).
  SourceLoc loc;

  bool is_fact() const { return body.empty(); }
  /// True if any body literal is next(_).
  bool has_next() const;
  /// True if any body literal is a choice goal.
  bool has_choice() const;
  /// True if any body literal is least/most.
  bool has_extrema() const;
};

struct Program {
  std::vector<Rule> rules;

  /// All predicate name/arity pairs appearing anywhere in the program.
  struct PredicateRef {
    std::string name;
    uint32_t arity;
    bool operator==(const PredicateRef&) const = default;
  };
  std::vector<PredicateRef> AllPredicates() const;
};

/// Appends the names of all variables in `lit` (including those under
/// NotExists and inside meta-goal tuples) to `out`.
void CollectLiteralVariables(const Literal& lit, std::vector<std::string>* out);

}  // namespace gdlog

#endif  // GDLOG_AST_AST_H_
