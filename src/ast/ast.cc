#include "ast/ast.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"

namespace gdlog {

std::string SourceLoc::ToString() const {
  if (!valid()) return "unknown location";
  return "line " + std::to_string(line) + ", column " + std::to_string(column);
}

bool IsArithmeticFunctor(const std::string& name) {
  return name == "+" || name == "-" || name == "*" || name == "/" ||
         name == "mod" || name == "min" || name == "max";
}

void CollectVariables(const TermNode& t, std::vector<std::string>* out) {
  switch (t.kind) {
    case TermKind::kVariable:
      out->push_back(t.name);
      break;
    case TermKind::kConstant:
      break;
    case TermKind::kCompound:
      for (const TermNode& a : t.args) CollectVariables(a, out);
      break;
  }
}

bool TermEquals(const TermNode& a, const TermNode& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case TermKind::kVariable:
      return a.name == b.name;
    case TermKind::kConstant:
      return a.constant == b.constant;
    case TermKind::kCompound: {
      if (a.name != b.name || a.args.size() != b.args.size()) return false;
      for (size_t i = 0; i < a.args.size(); ++i) {
        if (!TermEquals(a.args[i], b.args[i])) return false;
      }
      return true;
    }
  }
  return false;
}

std::string_view ComparisonOpName(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return "=";
    case ComparisonOp::kNe:
      return "!=";
    case ComparisonOp::kLt:
      return "<";
    case ComparisonOp::kLe:
      return "<=";
    case ComparisonOp::kGt:
      return ">";
    case ComparisonOp::kGe:
      return ">=";
  }
  return "?";
}

ComparisonOp FlipComparison(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return ComparisonOp::kEq;
    case ComparisonOp::kNe:
      return ComparisonOp::kNe;
    case ComparisonOp::kLt:
      return ComparisonOp::kGt;
    case ComparisonOp::kLe:
      return ComparisonOp::kGe;
    case ComparisonOp::kGt:
      return ComparisonOp::kLt;
    case ComparisonOp::kGe:
      return ComparisonOp::kLe;
  }
  return op;
}

ComparisonOp NegateComparison(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return ComparisonOp::kNe;
    case ComparisonOp::kNe:
      return ComparisonOp::kEq;
    case ComparisonOp::kLt:
      return ComparisonOp::kGe;
    case ComparisonOp::kLe:
      return ComparisonOp::kGt;
    case ComparisonOp::kGt:
      return ComparisonOp::kLe;
    case ComparisonOp::kGe:
      return ComparisonOp::kLt;
  }
  return op;
}

void CollectLiteralVariables(const Literal& lit,
                             std::vector<std::string>* out) {
  for (const TermNode& t : lit.args) CollectVariables(t, out);
  for (const Literal& inner : lit.body) CollectLiteralVariables(inner, out);
}

bool Rule::has_next() const {
  return std::any_of(body.begin(), body.end(), [](const Literal& l) {
    return l.kind == LiteralKind::kNext;
  });
}

bool Rule::has_choice() const {
  return std::any_of(body.begin(), body.end(), [](const Literal& l) {
    return l.kind == LiteralKind::kChoice;
  });
}

bool Rule::has_extrema() const {
  return std::any_of(body.begin(), body.end(), [](const Literal& l) {
    return l.kind == LiteralKind::kLeast || l.kind == LiteralKind::kMost;
  });
}

std::vector<Program::PredicateRef> Program::AllPredicates() const {
  std::vector<PredicateRef> out;
  auto add = [&out](const std::string& name, uint32_t arity) {
    PredicateRef ref{name, arity};
    if (std::find(out.begin(), out.end(), ref) == out.end()) {
      out.push_back(std::move(ref));
    }
  };
  // Recursion over literals to reach atoms under NotExists.
  std::function<void(const Literal&)> visit = [&](const Literal& l) {
    if (l.kind == LiteralKind::kAtom) {
      add(l.predicate, static_cast<uint32_t>(l.args.size()));
    }
    for (const Literal& inner : l.body) visit(inner);
  };
  for (const Rule& r : rules) {
    visit(r.head);
    for (const Literal& l : r.body) visit(l);
  }
  return out;
}

}  // namespace gdlog
