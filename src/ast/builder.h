// Fluent helpers for constructing AST fragments programmatically —
// used by the rewriter (which synthesizes chosen/diffChoice rules) and
// by tests that want rules without going through the parser.
#ifndef GDLOG_AST_BUILDER_H_
#define GDLOG_AST_BUILDER_H_

#include <string>
#include <vector>

#include "ast/ast.h"

namespace gdlog {

/// Variable term.
TermNode V(std::string name);
/// Integer constant term.
TermNode C(int64_t v);
/// Symbol constant term (interned in `store`).
TermNode Sym(ValueStore* store, std::string_view name);
/// The constant nil.
TermNode NilTerm();
/// Tuple term (X, Y, ...).
TermNode Tup(std::vector<TermNode> args);
/// Compound term f(args...).
TermNode Fn(std::string functor, std::vector<TermNode> args);

/// Positive atom literal.
Literal Atom(std::string pred, std::vector<TermNode> args);
/// Negated atom literal.
Literal NegAtom(std::string pred, std::vector<TermNode> args);

/// A rule head <- body.
Rule MakeRule(Literal head, std::vector<Literal> body);
/// A ground fact.
Rule Fact(std::string pred, std::vector<TermNode> args);

}  // namespace gdlog

#endif  // GDLOG_AST_BUILDER_H_
