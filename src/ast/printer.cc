#include "ast/printer.h"

#include <sstream>

namespace gdlog {

namespace {

// Precedence for infix arithmetic rendering: + - below * / mod.
int FunctorPrecedence(const std::string& f) {
  if (f == "+" || f == "-") return 1;
  if (f == "*" || f == "/" || f == "mod") return 2;
  return 0;  // not infix
}

void PrintTerm(const ValueStore& store, const TermNode& t, std::ostream& out,
               int parent_prec) {
  switch (t.kind) {
    case TermKind::kVariable:
      out << t.name;
      return;
    case TermKind::kConstant:
      out << store.ToString(t.constant);
      return;
    case TermKind::kCompound: {
      const int prec = FunctorPrecedence(t.name);
      if (prec > 0 && t.args.size() == 2) {
        const bool paren = prec < parent_prec;
        if (paren) out << "(";
        PrintTerm(store, t.args[0], out, prec);
        out << " " << t.name << " ";
        PrintTerm(store, t.args[1], out, prec + 1);
        if (paren) out << ")";
        return;
      }
      if (t.is_tuple()) {
        out << "(";
      } else {
        out << t.name << "(";
      }
      for (size_t i = 0; i < t.args.size(); ++i) {
        if (i) out << ", ";
        PrintTerm(store, t.args[i], out, 0);
      }
      out << ")";
      return;
    }
  }
}

void PrintLiteral(const ValueStore& store, const Literal& l,
                  std::ostream& out) {
  switch (l.kind) {
    case LiteralKind::kAtom: {
      if (l.negated) out << "not ";
      out << l.predicate;
      if (!l.args.empty()) {
        out << "(";
        for (size_t i = 0; i < l.args.size(); ++i) {
          if (i) out << ", ";
          PrintTerm(store, l.args[i], out, 0);
        }
        out << ")";
      }
      return;
    }
    case LiteralKind::kNotExists: {
      out << "not (";
      for (size_t i = 0; i < l.body.size(); ++i) {
        if (i) out << ", ";
        PrintLiteral(store, l.body[i], out);
      }
      out << ")";
      return;
    }
    case LiteralKind::kComparison: {
      PrintTerm(store, l.args[0], out, 0);
      out << " " << ComparisonOpName(l.op) << " ";
      PrintTerm(store, l.args[1], out, 0);
      return;
    }
    case LiteralKind::kChoice: {
      out << "choice(";
      PrintTerm(store, l.args[0], out, 0);
      out << ", ";
      PrintTerm(store, l.args[1], out, 0);
      out << ")";
      return;
    }
    case LiteralKind::kLeast:
    case LiteralKind::kMost: {
      out << (l.kind == LiteralKind::kLeast ? "least(" : "most(");
      PrintTerm(store, l.args[0], out, 0);
      // Omit the group when it is the empty tuple, matching the paper's
      // abbreviation least(C) for least(C, ()).
      const TermNode& group = l.args[1];
      if (!(group.is_tuple() && group.args.empty())) {
        out << ", ";
        PrintTerm(store, group, out, 0);
      }
      out << ")";
      return;
    }
    case LiteralKind::kNext: {
      out << "next(";
      PrintTerm(store, l.args[0], out, 0);
      out << ")";
      return;
    }
  }
}

}  // namespace

std::string TermToString(const ValueStore& store, const TermNode& t) {
  std::ostringstream out;
  PrintTerm(store, t, out, 0);
  return out.str();
}

std::string LiteralToString(const ValueStore& store, const Literal& l) {
  std::ostringstream out;
  PrintLiteral(store, l, out);
  return out.str();
}

std::string RuleToString(const ValueStore& store, const Rule& r) {
  std::ostringstream out;
  PrintLiteral(store, r.head, out);
  if (!r.body.empty()) {
    out << " <- ";
    for (size_t i = 0; i < r.body.size(); ++i) {
      if (i) out << ", ";
      PrintLiteral(store, r.body[i], out);
    }
  }
  out << ".";
  return out.str();
}

std::string ProgramToString(const ValueStore& store, const Program& p) {
  std::ostringstream out;
  for (const Rule& r : p.rules) out << RuleToString(store, r) << "\n";
  return out.str();
}

}  // namespace gdlog
