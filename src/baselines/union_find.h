// Disjoint-set forest with union by rank and path compression —
// the component structure the classical Kruskal implementation uses
// (and the paper's Section 7 contrasts its comp-relation against).
#ifndef GDLOG_BASELINES_UNION_FIND_H_
#define GDLOG_BASELINES_UNION_FIND_H_

#include <cstdint>
#include <vector>

namespace gdlog {

class UnionFind {
 public:
  explicit UnionFind(uint32_t n);

  uint32_t Find(uint32_t x);

  /// Unites the sets of a and b; false if already united.
  bool Union(uint32_t a, uint32_t b);

  uint32_t num_components() const { return components_; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
  uint32_t components_;
};

}  // namespace gdlog

#endif  // GDLOG_BASELINES_UNION_FIND_H_
