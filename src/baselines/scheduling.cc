#include "baselines/scheduling.h"

#include <algorithm>
#include <limits>

namespace gdlog {

std::vector<std::pair<int64_t, int64_t>> BaselineSelectActivities(
    std::vector<std::pair<int64_t, int64_t>> jobs) {
  std::sort(jobs.begin(), jobs.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  std::vector<std::pair<int64_t, int64_t>> out;
  int64_t last_finish = std::numeric_limits<int64_t>::min();
  for (const auto& [start, finish] : jobs) {
    if (start >= last_finish) {
      out.push_back({start, finish});
      last_finish = finish;
    }
  }
  return out;
}

}  // namespace gdlog
