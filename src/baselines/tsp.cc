#include "baselines/tsp.h"

#include <algorithm>
#include <limits>
#include <unordered_set>
#include <vector>

namespace gdlog {

BaselineTspChain BaselineGreedyTsp(const Graph& graph) {
  BaselineTspChain out;
  if (graph.edges.empty()) return out;

  std::vector<std::vector<std::pair<uint32_t, int64_t>>> adj(graph.num_nodes);
  for (const GraphEdge& e : graph.edges) {
    adj[e.u].push_back({e.v, e.w});
    adj[e.v].push_back({e.u, e.w});
  }

  // Globally cheapest arc starts the chain (least_arcs + choice((), _)).
  const GraphEdge* best = &graph.edges[0];
  for (const GraphEdge& e : graph.edges) {
    if (e.w < best->w) best = &e;
  }
  std::unordered_set<uint32_t> entered;
  out.arcs.push_back(*best);
  out.total_cost = best->w;
  entered.insert(best->v);
  uint32_t cur = best->v;

  for (;;) {
    int64_t bw = std::numeric_limits<int64_t>::max();
    uint32_t bto = UINT32_MAX;
    for (const auto& [to, w] : adj[cur]) {
      if (entered.count(to)) continue;
      if (w < bw) {
        bw = w;
        bto = to;
      }
    }
    if (bto == UINT32_MAX) break;
    out.arcs.push_back({cur, bto, bw});
    out.total_cost += bw;
    entered.insert(bto);
    cur = bto;
  }
  return out;
}

}  // namespace gdlog
