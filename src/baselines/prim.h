// Procedural Prim's algorithm with a lazy-deletion binary heap —
// the classical O(e log e) comparator for Experiment E1.
#ifndef GDLOG_BASELINES_PRIM_H_
#define GDLOG_BASELINES_PRIM_H_

#include "workload/graph.h"

namespace gdlog {

struct BaselineMst {
  int64_t total_cost = 0;
  std::vector<GraphEdge> edges;  // tree edges, in selection order
};

/// Minimum spanning tree of the connected component containing `root`
/// (graph interpreted as undirected).
BaselineMst BaselinePrim(const Graph& graph, uint32_t root = 0);

}  // namespace gdlog

#endif  // GDLOG_BASELINES_PRIM_H_
