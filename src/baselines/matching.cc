#include "baselines/matching.h"

#include <algorithm>
#include <unordered_set>

namespace gdlog {

BaselineMatching BaselineGreedyMatching(const Graph& graph) {
  std::vector<GraphEdge> sorted = graph.edges;
  std::stable_sort(
      sorted.begin(), sorted.end(),
      [](const GraphEdge& a, const GraphEdge& b) { return a.w < b.w; });
  std::unordered_set<uint32_t> used_source, used_target;
  BaselineMatching out;
  for (const GraphEdge& e : sorted) {
    if (used_source.count(e.u) || used_target.count(e.v)) continue;
    used_source.insert(e.u);
    used_target.insert(e.v);
    out.total_cost += e.w;
    out.arcs.push_back(e);
  }
  return out;
}

}  // namespace gdlog
