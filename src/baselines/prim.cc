#include "baselines/prim.h"

#include <queue>
#include <vector>

namespace gdlog {

BaselineMst BaselinePrim(const Graph& graph, uint32_t root) {
  // Adjacency lists (both directions).
  std::vector<std::vector<std::pair<uint32_t, int64_t>>> adj(graph.num_nodes);
  for (const GraphEdge& e : graph.edges) {
    adj[e.u].push_back({e.v, e.w});
    adj[e.v].push_back({e.u, e.w});
  }

  struct Entry {
    int64_t w;
    uint32_t from, to;
    bool operator>(const Entry& o) const { return w > o.w; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  std::vector<bool> in_tree(graph.num_nodes, false);

  BaselineMst out;
  in_tree[root] = true;
  for (const auto& [to, w] : adj[root]) pq.push({w, root, to});
  while (!pq.empty()) {
    const Entry e = pq.top();
    pq.pop();
    if (in_tree[e.to]) continue;  // lazy deletion
    in_tree[e.to] = true;
    out.total_cost += e.w;
    out.edges.push_back({e.from, e.to, e.w});
    for (const auto& [to, w] : adj[e.to]) {
      if (!in_tree[to]) pq.push({w, e.to, to});
    }
  }
  return out;
}

}  // namespace gdlog
