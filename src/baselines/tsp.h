// Procedural greedy TSP chain — the comparator for E6.
//
// Mirrors the paper's tsp_chain program exactly: start with the globally
// cheapest arc; from the chain's current endpoint repeatedly take the
// cheapest arc to a node not previously entered (the choice(Y, X) FD),
// until no extension exists. The chain's very first node was never
// "entered", so the walk may close back into it — as the program allows.
#ifndef GDLOG_BASELINES_TSP_H_
#define GDLOG_BASELINES_TSP_H_

#include "workload/graph.h"

namespace gdlog {

struct BaselineTspChain {
  int64_t total_cost = 0;
  std::vector<GraphEdge> arcs;  // in chain order
};

/// `graph` is interpreted as undirected (arcs usable both ways).
BaselineTspChain BaselineGreedyTsp(const Graph& graph);

}  // namespace gdlog

#endif  // GDLOG_BASELINES_TSP_H_
