#include "baselines/union_find.h"

namespace gdlog {

UnionFind::UnionFind(uint32_t n)
    : parent_(n), rank_(n, 0), components_(n) {
  for (uint32_t i = 0; i < n; ++i) parent_[i] = i;
}

uint32_t UnionFind::Find(uint32_t x) {
  uint32_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    const uint32_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --components_;
  return true;
}

}  // namespace gdlog
