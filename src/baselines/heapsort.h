// Procedural heap-sort — the comparator for Experiment E2. Section 6
// observes that the fixpoint implementation of Example 5 "implements a
// heap-sort" although the program reads like insertion sort; this is the
// hand-written version of that heap-sort.
#ifndef GDLOG_BASELINES_HEAPSORT_H_
#define GDLOG_BASELINES_HEAPSORT_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace gdlog {

/// Sorts (id, cost) pairs ascending by cost (ties by id) using an
/// explicit binary heap; no std::sort under the hood.
std::vector<std::pair<int64_t, int64_t>> BaselineHeapSort(
    std::vector<std::pair<int64_t, int64_t>> tuples);

}  // namespace gdlog

#endif  // GDLOG_BASELINES_HEAPSORT_H_
