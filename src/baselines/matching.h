// Procedural greedy min-cost matching — the comparator for E3.
//
// Mirrors Example 7's program semantics exactly: arcs are considered in
// ascending cost order; an arc (X, Y) is kept iff X has not been used as
// a source and Y has not been used as a target (the two choice FDs
// choice(X, Y) and choice(Y, X)). On bipartite inputs this is the
// textbook greedy matching.
#ifndef GDLOG_BASELINES_MATCHING_H_
#define GDLOG_BASELINES_MATCHING_H_

#include "workload/graph.h"

namespace gdlog {

struct BaselineMatching {
  int64_t total_cost = 0;
  std::vector<GraphEdge> arcs;  // in selection order
};

BaselineMatching BaselineGreedyMatching(const Graph& graph);

}  // namespace gdlog

#endif  // GDLOG_BASELINES_MATCHING_H_
