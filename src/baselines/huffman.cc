#include "baselines/huffman.h"

#include <queue>

#include "common/logging.h"

namespace gdlog {

BaselineHuffmanResult BaselineHuffman(
    const std::vector<std::pair<std::string, int64_t>>& frequencies) {
  BaselineHuffmanResult out;
  const size_t n = frequencies.size();
  out.code_lengths.assign(n, 0);
  if (n <= 1) return out;

  struct Node {
    int64_t weight;
    uint64_t seq;  // deterministic tie-break
    int32_t left = -1, right = -1;
    int32_t leaf = -1;  // index into frequencies, or -1 for internal
  };
  std::vector<Node> nodes;
  auto cmp = [&nodes](int32_t a, int32_t b) {
    if (nodes[a].weight != nodes[b].weight) {
      return nodes[a].weight > nodes[b].weight;  // min-heap
    }
    return nodes[a].seq > nodes[b].seq;
  };
  std::priority_queue<int32_t, std::vector<int32_t>, decltype(cmp)> pq(cmp);
  uint64_t seq = 0;
  for (size_t i = 0; i < n; ++i) {
    nodes.push_back(Node{frequencies[i].second, seq++, -1, -1,
                         static_cast<int32_t>(i)});
    pq.push(static_cast<int32_t>(nodes.size() - 1));
  }
  while (pq.size() > 1) {
    const int32_t a = pq.top();
    pq.pop();
    const int32_t b = pq.top();
    pq.pop();
    Node merged{nodes[a].weight + nodes[b].weight, seq++, a, b, -1};
    out.total_cost += merged.weight;
    nodes.push_back(merged);
    pq.push(static_cast<int32_t>(nodes.size() - 1));
  }
  // Depth-first pass to compute code lengths.
  struct Frame {
    int32_t node;
    uint32_t depth;
  };
  std::vector<Frame> stack{{pq.top(), 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& nd = nodes[f.node];
    if (nd.leaf >= 0) {
      out.code_lengths[nd.leaf] = f.depth;
      continue;
    }
    stack.push_back({nd.left, f.depth + 1});
    stack.push_back({nd.right, f.depth + 1});
  }
  return out;
}

}  // namespace gdlog
