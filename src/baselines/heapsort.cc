#include "baselines/heapsort.h"

#include <cstddef>
#include <utility>

namespace gdlog {

using std::size_t;

namespace {

using Pair = std::pair<int64_t, int64_t>;

bool CostLess(const Pair& a, const Pair& b) {
  if (a.second != b.second) return a.second < b.second;
  return a.first < b.first;
}

void SiftDown(std::vector<Pair>* heap, size_t i, size_t n) {
  for (;;) {
    const size_t l = 2 * i + 1, r = 2 * i + 2;
    size_t largest = i;
    if (l < n && CostLess((*heap)[largest], (*heap)[l])) largest = l;
    if (r < n && CostLess((*heap)[largest], (*heap)[r])) largest = r;
    if (largest == i) return;
    std::swap((*heap)[i], (*heap)[largest]);
    i = largest;
  }
}

}  // namespace

std::vector<Pair> BaselineHeapSort(std::vector<Pair> tuples) {
  const size_t n = tuples.size();
  // Build max-heap, then repeatedly move the max to the tail.
  for (size_t i = n / 2; i-- > 0;) SiftDown(&tuples, i, n);
  for (size_t end = n; end > 1; --end) {
    std::swap(tuples[0], tuples[end - 1]);
    SiftDown(&tuples, 0, end - 1);
  }
  return tuples;
}

}  // namespace gdlog
