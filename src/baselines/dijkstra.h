// Procedural Dijkstra with a lazy-deletion binary heap — the comparator
// for the SSSP extension experiment.
#ifndef GDLOG_BASELINES_DIJKSTRA_H_
#define GDLOG_BASELINES_DIJKSTRA_H_

#include <cstdint>
#include <vector>

#include "workload/graph.h"

namespace gdlog {

/// dist[v] from root, or -1 when unreachable (undirected reading,
/// non-negative weights).
std::vector<int64_t> BaselineDijkstra(const Graph& graph, uint32_t root = 0);

}  // namespace gdlog

#endif  // GDLOG_BASELINES_DIJKSTRA_H_
