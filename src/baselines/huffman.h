// Procedural Huffman tree construction with a priority queue — the
// comparator for E5. Returns the weighted path length (the classical
// "cost" of the code: sum over merges of the merged subtree weights),
// which is invariant across tie-breaking orders.
#ifndef GDLOG_BASELINES_HUFFMAN_H_
#define GDLOG_BASELINES_HUFFMAN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gdlog {

struct BaselineHuffmanResult {
  // Sum of the costs of all internal (merged) nodes == weighted path
  // length of the optimal prefix code.
  int64_t total_cost = 0;
  // Code length per input symbol, parallel to the input order.
  std::vector<uint32_t> code_lengths;
};

BaselineHuffmanResult BaselineHuffman(
    const std::vector<std::pair<std::string, int64_t>>& frequencies);

}  // namespace gdlog

#endif  // GDLOG_BASELINES_HUFFMAN_H_
