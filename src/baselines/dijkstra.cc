#include "baselines/dijkstra.h"

#include <queue>

namespace gdlog {

std::vector<int64_t> BaselineDijkstra(const Graph& graph, uint32_t root) {
  std::vector<std::vector<std::pair<uint32_t, int64_t>>> adj(graph.num_nodes);
  for (const GraphEdge& e : graph.edges) {
    adj[e.u].push_back({e.v, e.w});
    adj[e.v].push_back({e.u, e.w});
  }
  std::vector<int64_t> dist(graph.num_nodes, -1);
  using Entry = std::pair<int64_t, uint32_t>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  pq.push({0, root});
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (dist[v] != -1) continue;  // lazy deletion
    dist[v] = d;
    for (const auto& [to, w] : adj[v]) {
      if (dist[to] == -1) pq.push({d + w, to});
    }
  }
  return dist;
}

}  // namespace gdlog
