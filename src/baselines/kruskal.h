// Procedural Kruskal's algorithm (sort + union-find) — the classical
// O(e log e) comparator for Experiment E4.
#ifndef GDLOG_BASELINES_KRUSKAL_H_
#define GDLOG_BASELINES_KRUSKAL_H_

#include "baselines/prim.h"
#include "workload/graph.h"

namespace gdlog {

/// Minimum spanning forest (undirected interpretation).
BaselineMst BaselineKruskal(const Graph& graph);

}  // namespace gdlog

#endif  // GDLOG_BASELINES_KRUSKAL_H_
