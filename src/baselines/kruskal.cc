#include "baselines/kruskal.h"

#include <algorithm>

#include "baselines/union_find.h"

namespace gdlog {

BaselineMst BaselineKruskal(const Graph& graph) {
  std::vector<GraphEdge> sorted = graph.edges;
  std::sort(sorted.begin(), sorted.end(),
            [](const GraphEdge& a, const GraphEdge& b) { return a.w < b.w; });
  UnionFind uf(graph.num_nodes);
  BaselineMst out;
  for (const GraphEdge& e : sorted) {
    if (uf.Union(e.u, e.v)) {
      out.total_cost += e.w;
      out.edges.push_back(e);
      if (uf.num_components() == 1) break;
    }
  }
  return out;
}

}  // namespace gdlog
