// Procedural earliest-finish-first activity selection — the comparator
// for the scheduling extension experiment.
#ifndef GDLOG_BASELINES_SCHEDULING_H_
#define GDLOG_BASELINES_SCHEDULING_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace gdlog {

/// Maximum set of pairwise-compatible half-open intervals, selected in
/// ascending finish-time order.
std::vector<std::pair<int64_t, int64_t>> BaselineSelectActivities(
    std::vector<std::pair<int64_t, int64_t>> jobs);

}  // namespace gdlog

#endif  // GDLOG_BASELINES_SCHEDULING_H_
