// Durable relation store: WAL encode/decode, torn-tail recovery at every
// byte boundary, snapshot checkpoints, manifest atomicity, the GD21x
// failure taxonomy, fault-probe sweeps, and the headline chaos contract —
// an engine killed mid-mutation, reopened, and reloaded must re-derive a
// model bit-identical to an uninterrupted in-memory run, for every
// shipped greedy program.
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/diagnostics.h"
#include "api/engine.h"
#include "common/guardrails.h"
#include "storage/durable/durable_store.h"
#include "storage/durable/io.h"
#include "storage/durable/wal.h"

namespace gdlog {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string ProgramPath(const std::string& name) {
  return std::string(GDLOG_SOURCE_DIR) + "/programs/" + name;
}

/// A fresh scratch directory under the test temp root; removed by the
/// caller (leaks on assertion failure, which is fine for debugging).
std::string TempDbDir(const std::string& tag) {
  static int counter = 0;
  const std::string dir = ::testing::TempDir() + "gdlog_durability_" + tag +
                          "_" + std::to_string(::getpid()) + "_" +
                          std::to_string(counter++);
  std::filesystem::remove_all(dir);
  return dir;
}

void RemoveTree(const std::string& dir) { std::filesystem::remove_all(dir); }

uint64_t FileSize(const std::string& path) {
  return static_cast<uint64_t>(std::filesystem::file_size(path));
}

/// Truncates `path` to `size` bytes (simulating a crash that lost the
/// tail of the file).
void TruncateTo(const std::string& path, uint64_t size) {
  std::filesystem::resize_file(path, size);
}

/// Flips one byte of `path` at `offset`.
void CorruptByteAt(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(c ^ 0x5A));
}

/// The full model as ordered text (see differential_test.cc): the
/// bit-identity contract covers not just the fact set but the insertion
/// order the engine derived it in.
std::vector<std::string> DumpModel(const Engine& e) {
  std::vector<std::string> lines;
  for (const auto& ref : e.program()->AllPredicates()) {
    for (const auto& tuple : e.Query(ref.name, ref.arity)) {
      std::string line = ref.name;
      line += '(';
      for (size_t i = 0; i < tuple.size(); ++i) {
        if (i) line += ',';
        line += e.store().ToString(tuple[i]);
      }
      line += ')';
      lines.push_back(std::move(line));
    }
  }
  return lines;
}

// ---------------------------------------------------------------------------
// WAL: codec round trip and torn-tail scanning
// ---------------------------------------------------------------------------

TEST(Wal, RoundTripsAllValueKinds) {
  const std::string dir = TempDbDir("wal-roundtrip");
  ASSERT_TRUE(EnsureDir(dir).ok());
  const std::string path = dir + "/wal-1.log";

  ValueStore store;
  const Value sym = store.MakeSymbol("alpha");
  const std::vector<Value> term_args = {Value::Int(-7), sym};
  const Value term = store.MakeTerm("pair", term_args);
  std::vector<Value> t1 = {Value::Int(1), Value::Int(2)};
  std::vector<Value> t2 = {sym, term, Value::Nil()};

  WalWriter w;
  w.set_options({FsyncPolicy::kAlways, 1 << 20, nullptr});
  ASSERT_TRUE(w.Open(path, 1, 0).ok());
  ASSERT_TRUE(
      w.Append(store, WalRecordType::kCreateRelation, "edge", 2, TupleView())
          .ok());
  ASSERT_TRUE(
      w.Append(store, WalRecordType::kAddFact, "edge", 2, TupleView(t1)).ok());
  ASSERT_TRUE(
      w.Append(store, WalRecordType::kAddFact, "mix", 3, TupleView(t2)).ok());
  ASSERT_TRUE(
      w.Append(store, WalRecordType::kRetract, "edge", 2, TupleView(t1)).ok());
  EXPECT_EQ(w.appends(), 4u);
  ASSERT_TRUE(w.Close().ok());

  // Replay into a *fresh* store: the codec is content-based.
  ValueStore replay;
  auto scan = ReadWal(path, 1, &replay);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_FALSE(scan->tail_dropped);
  EXPECT_EQ(scan->dropped_bytes, 0u);
  ASSERT_EQ(scan->records.size(), 4u);
  EXPECT_EQ(scan->records[0].type, WalRecordType::kCreateRelation);
  EXPECT_EQ(scan->records[0].name, "edge");
  EXPECT_EQ(scan->records[0].arity, 2u);
  EXPECT_TRUE(scan->records[0].tuple.empty());
  EXPECT_EQ(scan->records[1].type, WalRecordType::kAddFact);
  ASSERT_EQ(scan->records[1].tuple.size(), 2u);
  EXPECT_EQ(replay.ToString(scan->records[1].tuple[0]), "1");
  EXPECT_EQ(replay.ToString(scan->records[1].tuple[1]), "2");
  ASSERT_EQ(scan->records[2].tuple.size(), 3u);
  EXPECT_EQ(replay.ToString(scan->records[2].tuple[0]),
            store.ToString(sym));
  EXPECT_EQ(replay.ToString(scan->records[2].tuple[1]),
            store.ToString(term));
  EXPECT_EQ(replay.ToString(scan->records[2].tuple[2]),
            store.ToString(Value::Nil()));
  EXPECT_EQ(scan->records[3].type, WalRecordType::kRetract);
  RemoveTree(dir);
}

TEST(Wal, MissingFileReadsAsEmptyLog) {
  ValueStore store;
  auto scan = ReadWal(TempDbDir("wal-missing") + "/wal-1.log", 1, &store);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->records.empty());
  EXPECT_EQ(scan->valid_size, 0u);
}

TEST(Wal, SequenceMismatchIsCorruption) {
  const std::string dir = TempDbDir("wal-seq");
  ASSERT_TRUE(EnsureDir(dir).ok());
  const std::string path = dir + "/wal-1.log";
  ValueStore store;
  WalWriter w;
  ASSERT_TRUE(w.Open(path, 1, 0).ok());
  ASSERT_TRUE(w.Close().ok());
  auto scan = ReadWal(path, 2, &store);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(DiagCodeOfStatus(scan.status()), diag::kWalCorrupt);
  RemoveTree(dir);
}

TEST(Wal, BadMagicIsCorruption) {
  const std::string dir = TempDbDir("wal-magic");
  ASSERT_TRUE(EnsureDir(dir).ok());
  const std::string path = dir + "/wal-1.log";
  std::ofstream(path, std::ios::binary)
      << "definitely not a WAL header at all";
  ValueStore store;
  auto scan = ReadWal(path, 1, &store);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(DiagCodeOfStatus(scan.status()), diag::kWalCorrupt);
  RemoveTree(dir);
}

// The property the whole recovery story rests on: a WAL truncated at ANY
// byte boundary inside its final record recovers exactly the earlier
// records, reports the torn tail, and names the valid prefix.
TEST(Wal, TruncationAtEveryByteBoundaryOfFinalRecord) {
  const std::string dir = TempDbDir("wal-trunc");
  ASSERT_TRUE(EnsureDir(dir).ok());
  const std::string path = dir + "/wal-1.log";

  ValueStore store;
  std::vector<Value> t1 = {Value::Int(10)};
  std::vector<Value> t2 = {Value::Int(20)};
  std::vector<Value> t3 = {store.MakeSymbol("final-record-payload")};

  WalWriter w;
  ASSERT_TRUE(w.Open(path, 1, 0).ok());
  ASSERT_TRUE(w.Append(store, WalRecordType::kAddFact, "p", 1,
                       TupleView(t1)).ok());
  ASSERT_TRUE(w.Append(store, WalRecordType::kAddFact, "p", 1,
                       TupleView(t2)).ok());
  const uint64_t prefix = w.size_bytes();  // valid size before record 3
  ASSERT_TRUE(w.Append(store, WalRecordType::kAddFact, "q", 1,
                       TupleView(t3)).ok());
  const uint64_t full = w.size_bytes();
  ASSERT_TRUE(w.Close().ok());
  ASSERT_GT(full, prefix);

  const std::string pristine = ReadFileOrDie(path);
  ASSERT_EQ(pristine.size(), full);

  for (uint64_t cut = prefix; cut < full; ++cut) {
    std::ofstream(path, std::ios::binary)
        << std::string_view(pristine.data(), cut);
    ValueStore replay;
    auto scan = ReadWal(path, 1, &replay);
    ASSERT_TRUE(scan.ok()) << "cut=" << cut << ": "
                           << scan.status().ToString();
    EXPECT_EQ(scan->records.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(scan->valid_size, prefix) << "cut=" << cut;
    EXPECT_EQ(scan->tail_dropped, cut != prefix) << "cut=" << cut;
    EXPECT_EQ(scan->dropped_bytes, cut - prefix) << "cut=" << cut;
  }
  RemoveTree(dir);
}

// A CRC-valid record can still carry absurd term nesting; the decoder
// must report [GD211] at its depth limit instead of recursing one stack
// frame per level until overflow.
TEST(Wal, DeeplyNestedTermIsCorruptionNotACrash) {
  std::string bytes;
  const int depth = kMaxValueNesting + 8;
  for (int i = 0; i < depth; ++i) {
    bytes.push_back(2);          // kTagTerm
    AppendBytes(&bytes, "f");    // functor
    AppendU32(&bytes, 1);        // one argument
  }
  bytes.push_back(3);            // innermost kTagNil
  ValueStore store;
  ByteReader r{bytes.data(), bytes.size(), 0};
  Value v;
  const Status st = r.ReadValue(&store, &v);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(DiagCodeOfStatus(st), diag::kWalCorrupt);
  EXPECT_NE(st.message().find("nesting"), std::string::npos);
}

// After a failed append leaves torn bytes at the physical EOF, the
// writer must refuse further appends: O_APPEND would land the next
// (acknowledged!) record after the garbage, and recovery — which stops
// at the first bad checksum — would silently drop it.
TEST(Wal, AppendAfterTornWriteIsRefused) {
  const std::string dir = TempDbDir("wal-latch");
  ASSERT_TRUE(EnsureDir(dir).ok());
  const std::string path = dir + "/wal-1.log";

  auto injector = FaultInjector::Parse("wal.append@2");
  ASSERT_TRUE(injector.ok());
  ValueStore store;
  std::vector<Value> t1 = {Value::Int(1)};
  std::vector<Value> t2 = {Value::Int(2)};
  WalWriter w;
  w.set_options({FsyncPolicy::kAlways, 1 << 20, &*injector});
  ASSERT_TRUE(w.Open(path, 1, 0).ok());
  ASSERT_TRUE(w.Append(store, WalRecordType::kAddFact, "p", 1,
                       TupleView(t1)).ok());
  const uint64_t valid = w.size_bytes();
  ASSERT_FALSE(w.Append(store, WalRecordType::kAddFact, "p", 1,
                        TupleView(t2)).ok());
  EXPECT_GT(FileSize(path), valid);  // the torn prefix really is on disk
  const Status refused =
      w.Append(store, WalRecordType::kAddFact, "p", 1, TupleView(t2));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(DiagCodeOfStatus(refused), diag::kWalError);
  ASSERT_TRUE(w.Close().ok());

  // Reopening recovers exactly the acknowledged record and appends
  // cleanly from there.
  ValueStore replay;
  auto scan = ReadWal(path, 1, &replay);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->tail_dropped);
  ASSERT_EQ(scan->records.size(), 1u);
  WalWriter again;
  ASSERT_TRUE(again.Open(path, 1, scan->valid_size).ok());
  ASSERT_TRUE(again.Append(store, WalRecordType::kAddFact, "p", 1,
                           TupleView(t2)).ok());
  ASSERT_TRUE(again.Close().ok());
  RemoveTree(dir);
}

// ---------------------------------------------------------------------------
// DurableStore: open, checkpoint, reopen
// ---------------------------------------------------------------------------

DurableStore::Options StoreOptions(const std::string& dir,
                                   FaultInjector* injector = nullptr) {
  DurableStore::Options o;
  o.dir = dir;
  o.fsync = FsyncPolicy::kAlways;
  o.injector = injector;
  return o;
}

void AddInt(DurableStore* s, std::string_view rel, int64_t a, int64_t b) {
  std::vector<Value> t = {Value::Int(a), Value::Int(b)};
  ASSERT_TRUE(s->LogCreateRelation(rel, 2).ok());
  ASSERT_TRUE(s->LogAddFact(rel, 2, TupleView(t)).ok());
}

TEST(DurableStore, EmptyDatabaseReopensEmpty) {
  const std::string dir = TempDbDir("store-empty");
  ValueStore vs;
  {
    DurableStore s;
    ASSERT_TRUE(s.Open(StoreOptions(dir), &vs).ok());
    EXPECT_FALSE(s.recovery().opened_existing);
    EXPECT_EQ(s.wal_seq(), 1u);
    ASSERT_TRUE(s.Close().ok());
  }
  EXPECT_TRUE(FileExists(dir + "/MANIFEST"));
  {
    DurableStore s;
    ASSERT_TRUE(s.Open(StoreOptions(dir), &vs).ok());
    EXPECT_TRUE(s.recovery().opened_existing);
    EXPECT_EQ(s.recovery().wal_records_replayed, 0u);
    EXPECT_FALSE(s.recovery().wal_tail_dropped);
    EXPECT_TRUE(s.relations().empty());
    ASSERT_TRUE(s.Close().ok());
  }
  RemoveTree(dir);
}

TEST(DurableStore, SnapshotOnlyReopenRestoresTheMirror) {
  const std::string dir = TempDbDir("store-snap");
  ValueStore vs;
  {
    DurableStore s;
    ASSERT_TRUE(s.Open(StoreOptions(dir), &vs).ok());
    AddInt(&s, "edge", 1, 2);
    AddInt(&s, "edge", 2, 3);
    ASSERT_TRUE(s.Checkpoint().ok());
    EXPECT_EQ(s.snapshot_seq(), 1u);
    EXPECT_EQ(s.wal_seq(), 2u);
    ASSERT_TRUE(s.Close().ok());
  }
  {
    DurableStore s;
    ASSERT_TRUE(s.Open(StoreOptions(dir), &vs).ok());
    EXPECT_EQ(s.recovery().snapshot_seq, 1u);
    EXPECT_EQ(s.recovery().snapshot_facts, 2u);
    EXPECT_EQ(s.recovery().wal_records_replayed, 0u);  // rotated WAL is empty
    ASSERT_EQ(s.relations().size(), 1u);
    EXPECT_EQ(s.relations()[0].num_rows, 2u);
    ASSERT_TRUE(s.Close().ok());
  }
  RemoveTree(dir);
}

TEST(DurableStore, CheckpointRetiresTheOldPair) {
  const std::string dir = TempDbDir("store-retire");
  ValueStore vs;
  DurableStore s;
  ASSERT_TRUE(s.Open(StoreOptions(dir), &vs).ok());
  AddInt(&s, "edge", 1, 2);
  ASSERT_TRUE(s.Checkpoint().ok());
  AddInt(&s, "edge", 5, 6);
  ASSERT_TRUE(s.Checkpoint().ok());
  EXPECT_FALSE(FileExists(dir + "/wal-1.log"));
  EXPECT_FALSE(FileExists(dir + "/wal-2.log"));
  EXPECT_TRUE(FileExists(dir + "/wal-3.log"));
  EXPECT_FALSE(FileExists(dir + "/snapshot-1.gds"));
  EXPECT_TRUE(FileExists(dir + "/snapshot-2.gds"));
  ASSERT_TRUE(s.Close().ok());
  RemoveTree(dir);
}

TEST(DurableStore, RetractSurvivesReopen) {
  const std::string dir = TempDbDir("store-retract");
  ValueStore vs;
  std::vector<Value> gone = {Value::Int(1), Value::Int(2)};
  {
    DurableStore s;
    ASSERT_TRUE(s.Open(StoreOptions(dir), &vs).ok());
    AddInt(&s, "edge", 1, 2);
    AddInt(&s, "edge", 2, 3);
    ASSERT_TRUE(s.LogRetract("edge", 2, TupleView(gone)).ok());
    ASSERT_TRUE(s.Close().ok());
  }
  DurableStore s;
  ASSERT_TRUE(s.Open(StoreOptions(dir), &vs).ok());
  ASSERT_EQ(s.relations().size(), 1u);
  ASSERT_EQ(s.relations()[0].num_rows, 1u);
  EXPECT_EQ(vs.ToString(s.relations()[0].rows[0]), "2");
  EXPECT_EQ(vs.ToString(s.relations()[0].rows[1]), "3");
  ASSERT_TRUE(s.Close().ok());
  RemoveTree(dir);
}

TEST(DurableStore, DoubleReopenIsIdempotent) {
  const std::string dir = TempDbDir("store-double");
  ValueStore vs;
  {
    DurableStore s;
    ASSERT_TRUE(s.Open(StoreOptions(dir), &vs).ok());
    AddInt(&s, "edge", 1, 2);
    AddInt(&s, "edge", 2, 3);
    ASSERT_TRUE(s.Close().ok());
  }
  uint64_t replayed_first = 0;
  for (int round = 0; round < 2; ++round) {
    DurableStore s;
    ASSERT_TRUE(s.Open(StoreOptions(dir), &vs).ok()) << "round " << round;
    EXPECT_EQ(s.recovery().wal_dropped_bytes, 0u);
    ASSERT_EQ(s.relations().size(), 1u);
    EXPECT_EQ(s.relations()[0].num_rows, 2u);
    if (round == 0) {
      replayed_first = s.recovery().wal_records_replayed;
    } else {
      // Reopening without writing must not change what the log holds.
      EXPECT_EQ(s.recovery().wal_records_replayed, replayed_first);
    }
    ASSERT_TRUE(s.Close().ok());
  }
  RemoveTree(dir);
}

TEST(DurableStore, TornTailIsDroppedAndOverwritten) {
  const std::string dir = TempDbDir("store-torn");
  ValueStore vs;
  uint64_t full = 0;
  {
    DurableStore s;
    ASSERT_TRUE(s.Open(StoreOptions(dir), &vs).ok());
    AddInt(&s, "edge", 1, 2);
    AddInt(&s, "edge", 2, 3);
    ASSERT_TRUE(s.Close().ok());
    full = FileSize(dir + "/wal-1.log");
  }
  // Lose the last 3 bytes: mid-record, so the final append must vanish.
  TruncateTo(dir + "/wal-1.log", full - 3);
  {
    DurableStore s;
    ASSERT_TRUE(s.Open(StoreOptions(dir), &vs).ok());
    EXPECT_TRUE(s.recovery().wal_tail_dropped);
    EXPECT_EQ(s.recovery().wal_dropped_bytes, full - 3 -
                                                  s.recovery().wal_valid_bytes);
    ASSERT_EQ(s.relations().size(), 1u);
    EXPECT_EQ(s.relations()[0].num_rows, 1u);
    // The log is writable again from the valid prefix.
    AddInt(&s, "edge", 7, 8);
    ASSERT_TRUE(s.Close().ok());
  }
  DurableStore s;
  ASSERT_TRUE(s.Open(StoreOptions(dir), &vs).ok());
  EXPECT_FALSE(s.recovery().wal_tail_dropped);
  ASSERT_EQ(s.relations().size(), 1u);
  EXPECT_EQ(s.relations()[0].num_rows, 2u);
  ASSERT_TRUE(s.Close().ok());
  RemoveTree(dir);
}

TEST(DurableStore, ManifestCorruptionIsGd212) {
  const std::string dir = TempDbDir("store-badmanifest");
  ValueStore vs;
  {
    DurableStore s;
    ASSERT_TRUE(s.Open(StoreOptions(dir), &vs).ok());
    AddInt(&s, "edge", 1, 2);
    ASSERT_TRUE(s.Close().ok());
  }
  CorruptByteAt(dir + "/MANIFEST", 3);
  DurableStore s;
  const Status st = s.Open(StoreOptions(dir), &vs);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(DiagCodeOfStatus(st), diag::kSnapshotCorrupt);
  RemoveTree(dir);
}

TEST(DurableStore, SnapshotCorruptionIsGd212) {
  const std::string dir = TempDbDir("store-badsnap");
  ValueStore vs;
  {
    DurableStore s;
    ASSERT_TRUE(s.Open(StoreOptions(dir), &vs).ok());
    AddInt(&s, "edge", 1, 2);
    ASSERT_TRUE(s.Checkpoint().ok());
    ASSERT_TRUE(s.Close().ok());
  }
  // Flip a byte in the body (past magic + seq) so the CRC trailer fails.
  CorruptByteAt(dir + "/snapshot-1.gds", 20);
  DurableStore s;
  const Status st = s.Open(StoreOptions(dir), &vs);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(DiagCodeOfStatus(st), diag::kSnapshotCorrupt);
  RemoveTree(dir);
}

TEST(DurableStore, AutoCheckpointFiresOnCadence) {
  const std::string dir = TempDbDir("store-auto");
  ValueStore vs;
  DurableStore::Options o = StoreOptions(dir);
  o.checkpoint_every = 4;
  DurableStore s;
  ASSERT_TRUE(s.Open(o, &vs).ok());
  AddInt(&s, "edge", 1, 2);  // create + add = 2 appends
  AddInt(&s, "edge", 2, 3);  // +1 (create dedups)... add = 3
  AddInt(&s, "edge", 3, 4);  // 4th append -> auto checkpoint
  EXPECT_EQ(s.stats().checkpoints, 1u);
  EXPECT_EQ(s.snapshot_seq(), 1u);
  ASSERT_TRUE(s.Close().ok());
  RemoveTree(dir);
}

// A failed auto-checkpoint must not fail the mutation that triggered it:
// the append is already durable, and a caller that retried it would pass
// its dedup probe and log the fact a second time. The failure is counted,
// deferred, and the checkpoint retries on the next cadence hit.
TEST(DurableStore, FailedAutoCheckpointDoesNotFailTheMutation) {
  const std::string dir = TempDbDir("store-autofail");
  ValueStore vs;
  auto injector = FaultInjector::Parse("checkpoint.write");
  ASSERT_TRUE(injector.ok());
  DurableStore::Options o = StoreOptions(dir, &*injector);
  o.checkpoint_every = 2;
  {
    DurableStore s;
    ASSERT_TRUE(s.Open(o, &vs).ok());
    std::vector<Value> t = {Value::Int(1), Value::Int(2)};
    ASSERT_TRUE(s.LogCreateRelation("edge", 2).ok());
    // 2nd append: the auto-checkpoint fires and fails, but the add is
    // durable — the mutation reports success.
    ASSERT_TRUE(s.LogAddFact("edge", 2, TupleView(t)).ok());
    EXPECT_EQ(s.stats().checkpoint_failures, 1u);
    EXPECT_EQ(s.snapshot_seq(), 0u);  // old pair still in force
    const Status deferred = s.TakeDeferredError();
    EXPECT_FALSE(deferred.ok());
    EXPECT_EQ(DiagCodeOfStatus(deferred), diag::kWalError);
    EXPECT_TRUE(s.TakeDeferredError().ok());  // take clears
    // 3rd append: the cadence is still due, the probe is spent, and the
    // checkpoint retry succeeds.
    std::vector<Value> t2 = {Value::Int(2), Value::Int(3)};
    ASSERT_TRUE(s.LogAddFact("edge", 2, TupleView(t2)).ok());
    EXPECT_EQ(s.snapshot_seq(), 1u);
    ASSERT_TRUE(s.Close().ok());
  }
  // Nothing was double-logged: reopen sees exactly the two facts.
  DurableStore s;
  ASSERT_TRUE(s.Open(StoreOptions(dir), &vs).ok());
  ASSERT_EQ(s.relations().size(), 1u);
  EXPECT_EQ(s.relations()[0].num_rows, 2u);
  ASSERT_TRUE(s.Close().ok());
  RemoveTree(dir);
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

constexpr const char* kTc = R"(
  tc(X, Y) <- edge(X, Y).
  tc(X, Z) <- tc(X, Y), edge(Y, Z).
)";

EngineOptions Durable(const std::string& dir, std::string faults = "") {
  EngineOptions o;
  o.durability.dir = dir;
  o.durability.fsync = "always";
  o.faults = std::move(faults);
  return o;
}

TEST(EngineDurability, RecoversEdbAndRederivesTheFixpoint) {
  const std::string dir = TempDbDir("engine-roundtrip");
  std::vector<std::string> expected;
  {
    Engine e{Durable(dir)};
    ASSERT_TRUE(e.LoadProgram(kTc).ok());
    for (int i = 0; i + 1 < 6; ++i) {
      ASSERT_TRUE(
          e.AddFact("edge", {Value::Int(i), Value::Int(i + 1)}).ok());
    }
    ASSERT_TRUE(e.Run().ok());
    expected = DumpModel(e);
    EXPECT_EQ(e.Query("tc", 2).size(), 15u);
  }
  // Reopen: the facts come back from the WAL, no AddFact calls needed.
  Engine e{Durable(dir)};
  ASSERT_TRUE(e.durability_status().ok())
      << e.durability_status().ToString();
  ASSERT_TRUE(e.durable() != nullptr);
  EXPECT_TRUE(e.durable()->recovery().opened_existing);
  EXPECT_EQ(e.Query("edge", 2).size(), 5u);  // queryable before Run
  ASSERT_TRUE(e.LoadProgram(kTc).ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(DumpModel(e), expected);
  RemoveTree(dir);
}

TEST(EngineDurability, RetractFactIsDurable) {
  const std::string dir = TempDbDir("engine-retract");
  {
    Engine e{Durable(dir)};
    ASSERT_TRUE(e.AddFact("p", {Value::Int(1)}).ok());
    ASSERT_TRUE(e.AddFact("p", {Value::Int(2)}).ok());
    const Status missing = e.RetractFact("p", {Value::Int(9)});
    EXPECT_FALSE(missing.ok());
    ASSERT_TRUE(e.RetractFact("p", {Value::Int(1)}).ok());
    EXPECT_EQ(e.Query("p", 1).size(), 1u);
  }
  Engine e{Durable(dir)};
  ASSERT_TRUE(e.durability_status().ok());
  ASSERT_EQ(e.Query("p", 1).size(), 1u);
  EXPECT_EQ(e.store().ToString(e.Query("p", 1)[0][0]), "2");
  RemoveTree(dir);
}

TEST(EngineDurability, DuplicateAddsAreNotLoggedTwice) {
  const std::string dir = TempDbDir("engine-dedup");
  Engine e{Durable(dir)};
  ASSERT_TRUE(e.AddFact("p", {Value::Int(1)}).ok());
  const uint64_t appends = e.durable()->stats().wal_appends;
  ASSERT_TRUE(e.AddFact("p", {Value::Int(1)}).ok());  // dedup, still OK
  EXPECT_EQ(e.durable()->stats().wal_appends, appends);
  EXPECT_EQ(e.Query("p", 1).size(), 1u);
  RemoveTree(dir);
}

TEST(EngineDurability, CheckpointRotatesAndSurvivesReopen) {
  const std::string dir = TempDbDir("engine-ckpt");
  {
    Engine e{Durable(dir)};
    ASSERT_TRUE(e.AddFact("p", {Value::Int(1)}).ok());
    ASSERT_TRUE(e.Checkpoint().ok());
    ASSERT_TRUE(e.AddFact("p", {Value::Int(2)}).ok());  // lands in wal-2
    EXPECT_EQ(e.durable()->snapshot_seq(), 1u);
    EXPECT_EQ(e.durable()->wal_seq(), 2u);
  }
  Engine e{Durable(dir)};
  ASSERT_TRUE(e.durability_status().ok());
  EXPECT_EQ(e.durable()->recovery().snapshot_facts, 1u);
  EXPECT_EQ(e.durable()->recovery().wal_records_replayed, 1u);
  EXPECT_EQ(e.Query("p", 1).size(), 2u);
  RemoveTree(dir);
}

TEST(EngineDurability, ReportCarriesTheDurabilitySection) {
  const std::string dir = TempDbDir("engine-report");
  Engine e{Durable(dir)};
  ASSERT_TRUE(e.LoadProgram("q(X) <- p(X).").ok());
  ASSERT_TRUE(e.AddFact("p", {Value::Int(1)}).ok());
  ASSERT_TRUE(e.Run().ok());
  auto report = e.RunReport();
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("\"durability\""), std::string::npos);
  EXPECT_NE(report->find("\"wal_appends\""), std::string::npos);
  EXPECT_NE(report->find("\"recovery\""), std::string::npos);
  auto metrics = e.MetricsText();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("gdlog_wal_appends"), std::string::npos);
  EXPECT_NE(metrics->find("gdlog_checkpoint_count"), std::string::npos);
  RemoveTree(dir);
}

TEST(EngineDurability, InMemoryEngineReportsNullDurability) {
  Engine e{EngineOptions{}};
  ASSERT_TRUE(e.LoadProgram("q(X) <- p(X).").ok());
  ASSERT_TRUE(e.AddFact("p", {Value::Int(1)}).ok());
  ASSERT_TRUE(e.Run().ok());
  auto report = e.RunReport();
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("\"durability\":null"), std::string::npos);
  EXPECT_FALSE(e.Checkpoint().ok());
  EXPECT_FALSE(e.SyncDurability().ok());
}

TEST(EngineDurability, BadFsyncPolicyLatches) {
  EngineOptions o;
  o.durability.dir = TempDbDir("engine-badfsync");
  o.durability.fsync = "sometimes";
  Engine e(o);
  EXPECT_FALSE(e.durability_status().ok());
  EXPECT_FALSE(e.AddFact("p", {Value::Int(1)}).ok());
  EXPECT_FALSE(e.LoadProgram("q(X) <- p(X).").ok());
  RemoveTree(o.durability.dir);
}

TEST(EngineDurability, CorruptManifestLatchesGd212) {
  const std::string dir = TempDbDir("engine-badmanifest");
  { Engine e{Durable(dir)}; ASSERT_TRUE(e.AddFact("p", {Value::Int(1)}).ok()); }
  CorruptByteAt(dir + "/MANIFEST", 2);
  Engine e{Durable(dir)};
  ASSERT_FALSE(e.durability_status().ok());
  EXPECT_EQ(DiagCodeOfStatus(e.durability_status()), diag::kSnapshotCorrupt);
  const Status st = e.AddFact("p", {Value::Int(2)});
  EXPECT_EQ(DiagCodeOfStatus(st), diag::kSnapshotCorrupt);
  RemoveTree(dir);
}

// ---------------------------------------------------------------------------
// Fault probes (docs/ROBUSTNESS.md): every durability probe fails cleanly
// with its GD code, and the database reopens intact afterwards.
// ---------------------------------------------------------------------------

TEST(DurabilityFaults, TornAppendFailsWithGd210AndRecovers) {
  const std::string dir = TempDbDir("fault-append");
  {
    // Probe count 2: the relation-create append succeeds, the fact
    // append tears mid-record.
    Engine e{Durable(dir, "wal.append@2")};
    ASSERT_TRUE(e.durability_status().ok());
    const Status st = e.AddFact("p", {Value::Int(1)});
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(DiagCodeOfStatus(st), diag::kWalError);
    // Write-ahead: the failed fact never reached the in-memory relation.
    EXPECT_EQ(e.Query("p", 1).size(), 0u);
  }
  Engine e{Durable(dir)};
  ASSERT_TRUE(e.durability_status().ok())
      << e.durability_status().ToString();
  // The torn record was dropped; the create survived.
  EXPECT_TRUE(e.durable()->recovery().wal_tail_dropped);
  EXPECT_EQ(e.Query("p", 1).size(), 0u);
  ASSERT_TRUE(e.AddFact("p", {Value::Int(1)}).ok());
  EXPECT_EQ(e.Query("p", 1).size(), 1u);
  RemoveTree(dir);
}

// Acknowledged appends must never land after the garbage a torn write
// left at the physical EOF — recovery would stop at the garbage and
// silently drop them. The engine therefore refuses appends after a torn
// write until the database is reopened.
TEST(DurabilityFaults, TornAppendRefusesLaterAppendsUntilReopen) {
  const std::string dir = TempDbDir("fault-append-latch");
  {
    Engine e{Durable(dir, "wal.append@2")};
    ASSERT_TRUE(e.durability_status().ok());
    ASSERT_FALSE(e.AddFact("p", {Value::Int(1)}).ok());
    const Status st = e.AddFact("p", {Value::Int(2)});
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(DiagCodeOfStatus(st), diag::kWalError);
    EXPECT_EQ(e.Query("p", 1).size(), 0u);
  }
  Engine e{Durable(dir)};
  ASSERT_TRUE(e.durability_status().ok())
      << e.durability_status().ToString();
  EXPECT_TRUE(e.durable()->recovery().wal_tail_dropped);
  EXPECT_EQ(e.Query("p", 1).size(), 0u);  // nothing acknowledged was lost
  ASSERT_TRUE(e.AddFact("p", {Value::Int(2)}).ok());
  EXPECT_EQ(e.Query("p", 1).size(), 1u);
  RemoveTree(dir);
}

TEST(DurabilityFaults, FsyncFaultFailsWithGd210) {
  const std::string dir = TempDbDir("fault-fsync");
  Engine e{Durable(dir, "wal.fsync")};
  ASSERT_TRUE(e.durability_status().ok());
  const Status st = e.AddFact("p", {Value::Int(1)});  // fsync=always
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(DiagCodeOfStatus(st), diag::kWalError);
  RemoveTree(dir);
}

TEST(DurabilityFaults, CheckpointFaultLeavesTheOldPairInForce) {
  const std::string dir = TempDbDir("fault-ckpt");
  {
    Engine e{Durable(dir, "checkpoint.write")};
    ASSERT_TRUE(e.AddFact("p", {Value::Int(1)}).ok());
    const Status st = e.Checkpoint();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(DiagCodeOfStatus(st), diag::kWalError);
    EXPECT_EQ(e.durable()->snapshot_seq(), 0u);
    EXPECT_EQ(e.durable()->wal_seq(), 1u);
  }
  Engine e{Durable(dir)};
  ASSERT_TRUE(e.durability_status().ok());
  EXPECT_EQ(e.Query("p", 1).size(), 1u);  // WAL still had everything
  ASSERT_TRUE(e.Checkpoint().ok());       // and checkpointing works now
  RemoveTree(dir);
}

TEST(DurabilityFaults, RecoveryFaultLatchesGd211) {
  const std::string dir = TempDbDir("fault-recovery");
  { Engine e{Durable(dir)}; ASSERT_TRUE(e.AddFact("p", {Value::Int(1)}).ok()); }
  {
    Engine e{Durable(dir, "recovery.replay")};
    ASSERT_FALSE(e.durability_status().ok());
    EXPECT_EQ(DiagCodeOfStatus(e.durability_status()), diag::kWalCorrupt);
    EXPECT_FALSE(e.Run().ok());
  }
  Engine e{Durable(dir)};
  ASSERT_TRUE(e.durability_status().ok());
  EXPECT_EQ(e.Query("p", 1).size(), 1u);
  RemoveTree(dir);
}

// ---------------------------------------------------------------------------
// Chaos: crash at every WAL-append boundary of every shipped program,
// reopen, reload, and demand the exact uninterrupted model.
// ---------------------------------------------------------------------------

class DurabilityChaos : public ::testing::TestWithParam<const char*> {};

TEST_P(DurabilityChaos, CrashRecoveryIsBitIdentical) {
  const std::string text = ReadFileOrDie(ProgramPath(GetParam()));

  // Reference: uninterrupted, in-memory, same fact-insertion path the
  // durable engines use (inline facts through AddFact).
  Engine ref{EngineOptions{}};
  ASSERT_TRUE(ref.LoadProgramDurable(text).ok());
  ASSERT_TRUE(ref.Run().ok());
  const std::vector<std::string> expected = DumpModel(ref);
  ASSERT_FALSE(expected.empty());

  // An uninterrupted durable run is already bit-identical, and tells us
  // how many WAL appends the program's EDB needs.
  uint64_t total_appends = 0;
  {
    const std::string dir = TempDbDir("chaos-ref");
    EngineOptions o;
    o.durability.dir = dir;
    Engine e(o);
    ASSERT_TRUE(e.LoadProgramDurable(text).ok());
    ASSERT_TRUE(e.Run().ok());
    EXPECT_EQ(DumpModel(e), expected) << GetParam() << " (durable, no crash)";
    total_appends = e.durable()->stats().wal_appends;
    RemoveTree(dir);
  }
  ASSERT_GT(total_appends, 0u);

  // Kill the engine at every append boundary: the k-th append tears
  // mid-record (a genuinely torn tail on disk) and the engine dies. A
  // fresh engine must reopen the directory, drop the torn tail, replay
  // what survived, finish loading (dedup skips the recovered facts),
  // and re-derive the exact reference model.
  for (uint64_t k = 1; k <= total_appends; ++k) {
    const std::string dir = TempDbDir("chaos");
    {
      EngineOptions o;
      o.durability.dir = dir;
      o.faults = "wal.append@" + std::to_string(k);
      Engine dying(o);
      const Status st = dying.LoadProgramDurable(text);
      ASSERT_FALSE(st.ok()) << GetParam() << " append " << k
                            << " did not tear";
      EXPECT_EQ(DiagCodeOfStatus(st), diag::kWalError) << "k=" << k;
    }
    EngineOptions o;
    o.durability.dir = dir;
    Engine revived(o);
    ASSERT_TRUE(revived.durability_status().ok())
        << GetParam() << " k=" << k << ": "
        << revived.durability_status().ToString();
    EXPECT_TRUE(revived.durable()->recovery().wal_tail_dropped)
        << "k=" << k;
    ASSERT_TRUE(revived.LoadProgramDurable(text).ok()) << "k=" << k;
    ASSERT_TRUE(revived.Run().ok()) << "k=" << k;
    EXPECT_EQ(DumpModel(revived), expected)
        << GetParam() << " diverged after a crash at WAL append " << k;
    RemoveTree(dir);
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, DurabilityChaos,
                         ::testing::Values("course_assignment.dl",
                                           "huffman.dl", "kruskal.dl",
                                           "prim.dl", "sort.dl"));

}  // namespace
}  // namespace gdlog
