// Tests for least/most: grouped aggregates, ties, the combination with
// choice (Section 2's bi_st_c example), and extrema in recursion.
#include <gtest/gtest.h>

#include <set>

#include "api/engine.h"

namespace gdlog {
namespace {

TEST(Extrema, GroupedLeastKeepsTies) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    s(a, g1, 5). s(b, g1, 3). s(c, g1, 3). s(d, g2, 7).
    m(X, G, C) <- s(X, G, C), least(C, G).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  const auto rows = e.Query("m", 3);
  // Both g1 ties (b and c) survive, plus g2's single tuple.
  EXPECT_EQ(rows.size(), 3u);
  for (const auto& r : rows) EXPECT_NE(r[2].AsInt(), 5);
}

TEST(Extrema, GlobalLeast) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    v(a, 9). v(b, 2). v(c, 5).
    m(X, C) <- v(X, C), least(C).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  const auto rows = e.Query("m", 2);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].AsInt(), 2);
}

TEST(Extrema, MostSelectsMaximum) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    v(a, 9). v(b, 2). v(c, 5).
    m(X, C) <- v(X, C), most(C).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  const auto rows = e.Query("m", 2);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].AsInt(), 9);
}

TEST(Extrema, GuardAppliesBeforeExtremum) {
  // Section 2's bttm_st: the G > 1 guard filters before least.
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    takes(x, crs, 1). takes(y, crs, 2). takes(z, crs, 4).
    b(St, G) <- takes(St, crs, G), G > 1, least(G, ()).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  const auto rows = e.Query("b", 2);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].AsInt(), 2);  // 1 is excluded by the guard
}

TEST(Extrema, LeastCombinedWithChoice) {
  // Section 2's bi_st_c: bi-injective pairs among the least-graded.
  // Rewriting order matters: choice applies before least, so we select
  // bi-injective pairs out of those with bottom grade > 1.
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    takes(andy, engl, 4).
    takes(mark, engl, 2).
    takes(ann, math, 3).
    takes(mark, math, 2).
    bi_st_c(St, Crs, G) <- takes(St, Crs, G), G > 1, least(G),
                           choice(St, Crs), choice(Crs, St).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  const auto rows = e.Query("bi_st_c", 3);
  // The two stable models the paper lists both have exactly one tuple:
  // bi_st_c(mark, engl, 2) or bi_st_c(mark, math, 2).
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(e.store().SymbolName(rows[0][0]), "mark");
  EXPECT_EQ(rows[0][2].AsInt(), 2);
}

TEST(Extrema, BiStCBothModelsReachable) {
  std::set<std::string> courses;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    EngineOptions opts;
    opts.eval.choice_seed = seed;
    Engine e(opts);
    ASSERT_TRUE(e.LoadProgram(R"(
      takes(andy, engl, 4).
      takes(mark, engl, 2).
      takes(ann, math, 3).
      takes(mark, math, 2).
      bi_st_c(St, Crs, G) <- takes(St, Crs, G), G > 1, least(G),
                             choice(St, Crs), choice(Crs, St).
    )").ok());
    ASSERT_TRUE(e.Run().ok());
    const auto rows = e.Query("bi_st_c", 3);
    ASSERT_EQ(rows.size(), 1u);
    courses.insert(std::string(e.store().SymbolName(rows[0][1])));
  }
  EXPECT_EQ(courses, (std::set<std::string>{"engl", "math"}));
}

TEST(Extrema, LeastOverDerivedRelation) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    g(1, 2, 30). g(2, 3, 10). g(1, 3, 20).
    cost(C) <- g(_, _, C).
    cheapest(C) <- cost(C), least(C).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  const auto rows = e.Query("cheapest", 1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 10);
}

TEST(Extrema, RecursiveExtremaWithoutStagesRejected) {
  // least through recursion with no stage variables has no accepted
  // declarative meaning (Section 2) — the rewritten negation is inside
  // the clique.
  Engine e;
  const Status st = e.LoadProgram(R"(
    short(X, Y, C) <- e(X, Y, C), least(C, (X, Y)).
    short(X, Z, C) <- short(X, Y, C1), e(Y, Z, C2), C = C1 + C2,
                      least(C, (X, Z)).
  )");
  EXPECT_FALSE(st.ok());
}

TEST(Extrema, MinCostPerGroupWithSymbolGroups) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    route(paris, lyon, 430). route(paris, lyon, 390).
    route(paris, nice, 930). route(paris, nice, 1100).
    best(A, B, C) <- route(A, B, C), least(C, (A, B)).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  std::set<int64_t> costs;
  for (const auto& r : e.Query("best", 3)) costs.insert(r[2].AsInt());
  EXPECT_EQ(costs, (std::set<int64_t>{390, 930}));
}

}  // namespace
}  // namespace gdlog
