// E5 correctness: declarative Huffman (Example 6) against the
// procedural priority-queue construction.
#include "greedy/huffman.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baselines/huffman.h"
#include "workload/text_gen.h"

namespace gdlog {
namespace {

TEST(GreedyHuffman, ClassicTextbookExample) {
  // Frequencies 5, 9, 12, 13, 16, 45 — the CLRS example; the optimal
  // weighted path length is 224.
  const std::vector<std::pair<std::string, int64_t>> freqs = {
      {"f", 5}, {"e", 9}, {"c", 12}, {"b", 13}, {"d", 16}, {"a", 45}};
  auto result = HuffmanTree(freqs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_cost, 224);
  EXPECT_EQ(result->merges, freqs.size() - 1);
  EXPECT_EQ(result->codes.size(), freqs.size());
  // 'a' dominates: its code must be a single bit.
  EXPECT_EQ(result->codes.at("a").size(), 1u);
}

TEST(GreedyHuffman, MatchesBaselineCostOnZipfInputs) {
  for (uint64_t seed : {1u, 44u}) {
    TextGenOptions opts;
    opts.seed = seed;
    const auto freqs = ZipfLetterFrequencies(12, opts);
    auto result = HuffmanTree(freqs);
    ASSERT_TRUE(result.ok());
    const BaselineHuffmanResult base = BaselineHuffman(freqs);
    EXPECT_EQ(result->total_cost, base.total_cost) << "seed " << seed;
  }
}

TEST(GreedyHuffman, CodesArePrefixFree) {
  TextGenOptions opts;
  opts.seed = 9;
  const auto freqs = ZipfLetterFrequencies(10, opts);
  auto result = HuffmanTree(freqs);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->codes.size(), freqs.size());
  for (const auto& [la, ca] : result->codes) {
    for (const auto& [lb, cb] : result->codes) {
      if (la == lb) continue;
      EXPECT_NE(cb.rfind(ca, 0), 0u)
          << ca << " (" << la << ") prefixes " << cb << " (" << lb << ")";
    }
  }
}

TEST(GreedyHuffman, KraftEqualityHolds) {
  // A full binary code tree satisfies sum 2^-len == 1.
  const auto freqs = ZipfLetterFrequencies(8, {});
  auto result = HuffmanTree(freqs);
  ASSERT_TRUE(result.ok());
  double kraft = 0;
  for (const auto& [l, code] : result->codes) {
    kraft += std::pow(2.0, -static_cast<double>(code.size()));
  }
  EXPECT_NEAR(kraft, 1.0, 1e-9);
}

TEST(GreedyHuffman, TwoLetters) {
  auto result = HuffmanTree({{"x", 3}, {"y", 7}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_cost, 10);
  EXPECT_EQ(result->codes.at("x").size(), 1u);
  EXPECT_EQ(result->codes.at("y").size(), 1u);
}

TEST(GreedyHuffman, StableModelVerified) {
  auto result = HuffmanTree({{"a", 5}, {"b", 7}, {"c", 10}, {"d", 15}});
  ASSERT_TRUE(result.ok());
  auto check = result->engine->VerifyStableModel();
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_TRUE(check->stable) << check->diagnostic;
}

}  // namespace
}  // namespace gdlog
