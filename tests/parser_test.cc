// Unit tests for the lexer and parser, including round-trips through
// the pretty printer.
#include "parser/parser.h"

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "parser/lexer.h"

namespace gdlog {
namespace {

TEST(Lexer, BasicTokens) {
  auto toks = Tokenize("p(X, 42) <- q(X), X != a.");
  ASSERT_TRUE(toks.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), TokenKind::kIdent);
  EXPECT_EQ(kinds.back(), TokenKind::kEof);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kArrow),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kNe),
            kinds.end());
}

TEST(Lexer, ArrowVariants) {
  auto a = Tokenize("<-");
  auto b = Tokenize(":-");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)[0].kind, TokenKind::kArrow);
  EXPECT_EQ((*b)[0].kind, TokenKind::kArrow);
  auto le = Tokenize("<=");
  ASSERT_TRUE(le.ok());
  EXPECT_EQ((*le)[0].kind, TokenKind::kLe);
}

TEST(Lexer, CommentsSkipped) {
  auto toks = Tokenize(R"(
    % a line comment
    p(1). // another
    /* block
       comment */ q(2).
  )");
  ASSERT_TRUE(toks.ok());
  int idents = 0;
  for (const Token& t : *toks) {
    if (t.kind == TokenKind::kIdent) ++idents;
  }
  EXPECT_EQ(idents, 2);
}

TEST(Lexer, ErrorsCarryPosition) {
  auto toks = Tokenize("p(X) <- q(X)\n  ^ oops.");
  ASSERT_FALSE(toks.ok());
  EXPECT_NE(toks.status().message().find("line 2"), std::string::npos);
}

TEST(Lexer, StringLiterals) {
  auto toks = Tokenize(R"(name("hello \"world\"").)");
  ASSERT_TRUE(toks.ok());
  bool found = false;
  for (const Token& t : *toks) {
    if (t.kind == TokenKind::kString) {
      EXPECT_EQ(t.text, "hello \"world\"");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Parser, FactAndRule) {
  ValueStore store;
  auto prog = ParseProgram(&store, R"(
    edge(1, 2).
    path(X, Y) <- edge(X, Y).
    path(X, Z) <- path(X, Y), edge(Y, Z).
  )");
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  ASSERT_EQ(prog->rules.size(), 3u);
  EXPECT_TRUE(prog->rules[0].is_fact());
  EXPECT_FALSE(prog->rules[1].is_fact());
}

TEST(Parser, MetaGoals) {
  ValueStore store;
  auto rule = ParseRule(&store,
                        "p(X, C, I) <- next(I), q(X, C), least(C, I), "
                        "choice(X, (C, I)).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_TRUE(rule->has_next());
  EXPECT_TRUE(rule->has_choice());
  EXPECT_TRUE(rule->has_extrema());
}

TEST(Parser, LeastWithoutGroupIsEmptyTuple) {
  ValueStore store;
  auto rule = ParseRule(&store, "m(C) <- g(C), least(C).");
  ASSERT_TRUE(rule.ok());
  const Literal* least = nullptr;
  for (const Literal& l : rule->body) {
    if (l.kind == LiteralKind::kLeast) least = &l;
  }
  ASSERT_NE(least, nullptr);
  EXPECT_TRUE(least->args[1].is_tuple());
  EXPECT_TRUE(least->args[1].args.empty());
}

TEST(Parser, ArithmeticPrecedence) {
  ValueStore store;
  auto rule = ParseRule(&store, "p(X) <- q(A, B, C), X = A + B * C.");
  ASSERT_TRUE(rule.ok());
  const Literal& cmp = rule->body[1];
  ASSERT_EQ(cmp.kind, LiteralKind::kComparison);
  const TermNode& rhs = cmp.args[1];
  EXPECT_EQ(rhs.name, "+");           // + at the top
  EXPECT_EQ(rhs.args[1].name, "*");   // * binds tighter
}

TEST(Parser, NegatedConjunction) {
  ValueStore store;
  auto rule = ParseRule(
      &store, "p(X, I) <- q(X, I), not (r(X, L), L < I).");
  ASSERT_TRUE(rule.ok());
  ASSERT_EQ(rule->body[1].kind, LiteralKind::kNotExists);
  EXPECT_EQ(rule->body[1].body.size(), 2u);
}

TEST(Parser, NegatedSingleAtomStaysAtom) {
  ValueStore store;
  auto rule = ParseRule(&store, "p(X) <- q(X), not (r(X)).");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->body[1].kind, LiteralKind::kAtom);
  EXPECT_TRUE(rule->body[1].negated);
}

TEST(Parser, AnonymousVariablesRenamedApart) {
  ValueStore store;
  auto rule = ParseRule(&store, "p(X) <- q(_, X, _).");
  ASSERT_TRUE(rule.ok());
  const Literal& q = rule->body[0];
  EXPECT_NE(q.args[0].name, q.args[2].name);
}

TEST(Parser, CompoundTermsAndFunctors) {
  ValueStore store;
  auto rule = ParseRule(&store, "h(t(X, Y), C) <- f(X, Y, C).");
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule->head.args[0].is_compound());
  EXPECT_EQ(rule->head.args[0].name, "t");
}

TEST(Parser, ErrorsAreParseErrors) {
  ValueStore store;
  for (const char* bad :
       {"p(X <- q(X).", "p(X).extra", "p(X) <- .", "p(X) <- q(X)",
        "<- q(X).", "p(X) <- next(3)."}) {
    auto prog = ParseProgram(&store, bad);
    EXPECT_FALSE(prog.ok()) << bad;
    EXPECT_EQ(prog.status().code(), StatusCode::kParseError) << bad;
  }
}

TEST(Parser, NegativeNumbers) {
  ValueStore store;
  auto prog = ParseProgram(&store, "p(-5).");
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog->rules[0].head.args[0].constant.AsInt(), -5);
}

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintThenReparse) {
  ValueStore store;
  auto prog1 = ParseProgram(&store, GetParam());
  ASSERT_TRUE(prog1.ok()) << prog1.status().ToString();
  const std::string printed1 = ProgramToString(store, *prog1);
  auto prog2 = ParseProgram(&store, printed1);
  ASSERT_TRUE(prog2.ok()) << printed1 << "\n" << prog2.status().ToString();
  EXPECT_EQ(printed1, ProgramToString(store, *prog2));
}

INSTANTIATE_TEST_SUITE_P(
    PaperPrograms, RoundTripTest,
    ::testing::Values(
        // Example 1: course assignment.
        "a_st(St, Crs) <- takes(St, Crs), choice(Crs, St), choice(St, Crs).",
        // Example 4: Prim.
        "prm(nil, a, 0, 0).\n"
        "prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, "
        "least(C, I), choice(Y, X).\n"
        "new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).",
        // Example 5: sort.
        "sp(nil, 0, 0).\nsp(X, C, I) <- next(I), p(X, C), least(C, I).",
        // Example 6 fragment: Huffman feasibility.
        "feasible(t(X, Y), C, I) <- h(X, C1, J), h(Y, C2, K), "
        "not (subtree(X, L1), L1 < I), not (subtree(Y, L2), L2 < I), "
        "I = max(J, K), X != Y, C = C1 + C2.",
        // Example 7: matching.
        "matching(X, Y, C, I) <- next(I), g(X, Y, C), least(C, I), "
        "choice(Y, X), choice(X, Y).",
        // Arithmetic and comparisons.
        "p(X, Y) <- q(X), Y = X * 3 + 1, Y >= 10, Y != 12."));

}  // namespace
}  // namespace gdlog
