// End-to-end tests for the live observability endpoint: a real engine
// with the HTTP server enabled, scraped over loopback sockets with a
// raw-socket client so hostile inputs (oversized heads, wrong methods,
// slow senders) can be crafted byte-for-byte. The concurrency tests run
// scrapes against an 8-thread evaluation and are part of the TSan CI
// job, so the "safe mid-run" contract on every endpoint is checked by
// the race detector, not just by review.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "obs/http/http_server.h"
#include "obs/json.h"
#include "obs/progress.h"

namespace gdlog {
namespace {

// ---------------------------------------------------------------------------
// Raw-socket test client
// ---------------------------------------------------------------------------

/// Connects to 127.0.0.1:port; returns -1 on failure.
int Connect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: the server closing mid-send (expected for hostile
    // inputs) must surface as an error, not SIGPIPE the test binary.
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reads until EOF (the server always closes) or `max_bytes`.
std::string RecvAll(int fd, size_t max_bytes = 16u << 20) {
  std::string out;
  char buf[4096];
  while (out.size() < max_bytes) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

/// One full request/response exchange; returns the raw response.
std::string Fetch(uint16_t port, const std::string& request) {
  const int fd = Connect(port);
  if (fd < 0) return "";
  std::string resp;
  if (SendAll(fd, request)) resp = RecvAll(fd);
  ::close(fd);
  return resp;
}

std::string Get(uint16_t port, const std::string& path) {
  return Fetch(port, "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

int StatusOf(const std::string& response) {
  // "HTTP/1.1 200 OK" -> 200
  if (response.size() < 12 || response.compare(0, 5, "HTTP/") != 0) return -1;
  return std::atoi(response.c_str() + 9);
}

std::string BodyOf(const std::string& response) {
  const size_t p = response.find("\r\n\r\n");
  return p == std::string::npos ? "" : response.substr(p + 4);
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

constexpr const char* kPrim = R"(
  prm(nil, 0, 0, 0).
  prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I,
                     least(C, I), choice(Y, X).
  new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
  g(0, 1, 4). g(0, 2, 3).
  g(1, 2, 1). g(2, 1, 1).
  g(1, 3, 2). g(3, 1, 2).
  g(2, 3, 4). g(3, 2, 4).
  g(3, 4, 2). g(4, 3, 2).
)";

/// Eight independent runaway chains — keeps an 8-thread run busy until
/// the deadline guardrail stops it (same fixture as guardrails_test).
constexpr const char* kWideRunaway = R"(
  c(0, 0). c(1, 0). c(2, 0). c(3, 0).
  c(4, 0). c(5, 0). c(6, 0). c(7, 0).
  c(K, M) <- c(K, N), M = N + 1, N < 2000000000.
)";

std::unique_ptr<Engine> MakeServingEngine(const char* program,
                                          EngineOptions options = {}) {
  options.obs_http.enabled = true;
  options.obs_http.port = 0;  // ephemeral
  auto engine = std::make_unique<Engine>(options);
  EXPECT_TRUE(engine->obs_http_status().ok())
      << engine->obs_http_status().ToString();
  EXPECT_NE(engine->obs_server(), nullptr);
  EXPECT_NE(engine->obs_http_port(), 0);
  if (program != nullptr) {
    EXPECT_TRUE(engine->LoadProgram(program).ok());
  }
  return engine;
}

// ---------------------------------------------------------------------------
// Happy-path endpoints
// ---------------------------------------------------------------------------

TEST(ObsHttp, HealthzAnswersBeforeAnyRun) {
  auto engine = MakeServingEngine(kPrim);
  const std::string resp = Get(engine->obs_http_port(), "/healthz");
  EXPECT_EQ(StatusOf(resp), 200);
  EXPECT_EQ(BodyOf(resp), "ok\n");
  EXPECT_NE(resp.find("Connection: close"), std::string::npos);
}

TEST(ObsHttp, MetricsServePrometheusContentType) {
  auto engine = MakeServingEngine(kPrim);
  ASSERT_TRUE(engine->Run().ok());
  const std::string resp = Get(engine->obs_http_port(), "/metrics");
  EXPECT_EQ(StatusOf(resp), 200);
  EXPECT_NE(resp.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos)
      << resp.substr(0, 400);
  const std::string body = BodyOf(resp);
  EXPECT_NE(body.find("gdlog_build_info"), std::string::npos);
  EXPECT_NE(body.find("gdlog_engine_uptime_seconds"), std::string::npos);
  EXPECT_NE(body.find("gdlog_engine_run_state{state=\"completed\"} 1"),
            std::string::npos);
  EXPECT_NE(body.find("gdlog_vm_backend"), std::string::npos);
  // The server's own request counter appears once a scrape happened.
  const std::string again = BodyOf(Get(engine->obs_http_port(), "/metrics"));
  EXPECT_NE(again.find("gdlog_http_requests_total{path=\"/metrics\""),
            std::string::npos);
}

TEST(ObsHttp, StatuszReportsRunStateTransitions) {
  auto engine = MakeServingEngine(kPrim);
  const uint16_t port = engine->obs_http_port();
  auto statusz = [&] {
    auto doc = ParseJson(BodyOf(Get(port, "/statusz")));
    EXPECT_TRUE(doc.ok());
    return doc;
  };
  auto before = statusz();
  EXPECT_EQ(before->Find("run_state")->string, "idle");
  EXPECT_TRUE(before->Find("build")->Find("version") != nullptr);
  ASSERT_TRUE(engine->Run().ok());
  auto after = statusz();
  EXPECT_EQ(after->Find("run_state")->string, "completed");
  EXPECT_GE(after->Find("uptime_seconds")->number, 0);
  // Last progress event is surfaced for dashboards.
  const JsonValue* prog = after->Find("progress");
  ASSERT_TRUE(prog != nullptr);
  EXPECT_EQ(prog->Find("kind")->string, "termination");
}

TEST(ObsHttp, RunsRingServesCompletedReports) {
  auto engine = MakeServingEngine(kPrim);
  const uint16_t port = engine->obs_http_port();
  // Empty before any run completes.
  EXPECT_EQ(StatusOf(Get(port, "/runs/last")), 404);
  EXPECT_EQ(BodyOf(Get(port, "/runs")), "[]\n");
  ASSERT_TRUE(engine->Run().ok());
  const std::string last = BodyOf(Get(port, "/runs/last"));
  auto doc = ParseJson(last);
  ASSERT_TRUE(doc.ok()) << last.substr(0, 200);
  EXPECT_TRUE(doc->Find("termination") != nullptr);
  auto list = ParseJson(BodyOf(Get(port, "/runs")));
  ASSERT_TRUE(list.ok());
  ASSERT_TRUE(list->is_array());
  EXPECT_EQ(list->items.size(), 1u);
}

TEST(ObsHttp, TraceServedAfterTracedRun) {
  EngineOptions options;
  options.obs.enabled = true;
  options.obs.trace_path = "unused.json";  // rendering gated on tracer
  auto engine = MakeServingEngine(kPrim, options);
  const uint16_t port = engine->obs_http_port();
  EXPECT_EQ(StatusOf(Get(port, "/trace")), 404);
  ASSERT_TRUE(engine->Run().ok());
  const std::string resp = Get(port, "/trace");
  EXPECT_EQ(StatusOf(resp), 200);
  auto doc = ParseJson(BodyOf(resp));
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->Find("traceEvents") != nullptr);
}

TEST(ObsHttp, BlackboxDumpsFlightRecorder) {
  auto engine = MakeServingEngine(kPrim);
  ASSERT_TRUE(engine->Run().ok());
  const std::string body = BodyOf(Get(engine->obs_http_port(), "/blackbox"));
  EXPECT_NE(body.find("run-start"), std::string::npos) << body.substr(0, 200);
  EXPECT_NE(body.find("termination"), std::string::npos);
}

TEST(ObsHttp, ProgressStreamsEventsAndEndsAtTermination) {
  auto engine = MakeServingEngine(kPrim);
  const uint16_t port = engine->obs_http_port();
  ASSERT_TRUE(engine->Run().ok());
  // After the run the tap retains the whole history; the stream replays
  // it and closes at the termination event, so a plain blocking read
  // terminates without any client-side timeout games.
  const std::string resp = Get(port, "/progress");
  EXPECT_EQ(StatusOf(resp), 200);
  EXPECT_NE(resp.find("Content-Type: text/event-stream"), std::string::npos);
  // SSE responses must not carry Content-Length.
  EXPECT_EQ(resp.find("Content-Length"), std::string::npos);
  EXPECT_NE(resp.find("retry: 2000"), std::string::npos);
  EXPECT_NE(resp.find("event: progress"), std::string::npos);
  EXPECT_NE(resp.find("\"kind\":\"run-start\""), std::string::npos);
  EXPECT_NE(resp.find("\"kind\":\"round\""), std::string::npos);
  EXPECT_NE(resp.find("\"kind\":\"termination\""), std::string::npos);
  // Every data line must be valid JSON.
  std::istringstream in(resp);
  std::string line;
  int events = 0;
  while (std::getline(in, line)) {
    if (line.rfind("data: ", 0) != 0) continue;
    auto doc = ParseJson(line.substr(6));
    ASSERT_TRUE(doc.ok()) << line;
    EXPECT_TRUE(doc->Find("seq") != nullptr);
    ++events;
  }
  EXPECT_GE(events, 3);
}

// ---------------------------------------------------------------------------
// Hostile input
// ---------------------------------------------------------------------------

TEST(ObsHttp, UnknownPathIs404) {
  auto engine = MakeServingEngine(kPrim);
  EXPECT_EQ(StatusOf(Get(engine->obs_http_port(), "/nope")), 404);
}

TEST(ObsHttp, NonGetMethodsGet405WithAllow) {
  auto engine = MakeServingEngine(kPrim);
  const uint16_t port = engine->obs_http_port();
  const std::string resp =
      Fetch(port, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(StatusOf(resp), 405);
  EXPECT_NE(resp.find("Allow: GET, HEAD"), std::string::npos);
  EXPECT_EQ(StatusOf(Fetch(port, "DELETE / HTTP/1.1\r\n\r\n")), 405);
}

TEST(ObsHttp, HeadSuppressesBodyButKeepsLength) {
  auto engine = MakeServingEngine(kPrim);
  const std::string resp = Fetch(engine->obs_http_port(),
                                 "HEAD /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(StatusOf(resp), 200);
  EXPECT_NE(resp.find("Content-Length: 3"), std::string::npos);
  EXPECT_EQ(BodyOf(resp), "");
}

TEST(ObsHttp, MalformedRequestLineIs400) {
  auto engine = MakeServingEngine(kPrim);
  EXPECT_EQ(StatusOf(Fetch(engine->obs_http_port(), "BOGUS\r\n\r\n")), 400);
}

TEST(ObsHttp, OversizedRequestLineIs414) {
  auto engine = MakeServingEngine(kPrim);
  const std::string resp =
      Fetch(engine->obs_http_port(),
            "GET /" + std::string(8192, 'a') + " HTTP/1.1\r\n\r\n");
  EXPECT_EQ(StatusOf(resp), 414);
}

TEST(ObsHttp, OversizedHeadersAre431EvenWithoutBlankLine) {
  auto engine = MakeServingEngine(kPrim);
  // 2 MiB of headers, never terminated: the bounded parser must answer
  // 431 as soon as the limit trips, not buffer forever.
  std::string raw = "GET /metrics HTTP/1.1\r\n";
  while (raw.size() < (2u << 20)) {
    raw += "X-Flood: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
  }
  const int fd = Connect(engine->obs_http_port());
  ASSERT_GE(fd, 0);
  // The server may close mid-send once the limit trips; that's success.
  (void)SendAll(fd, raw);
  const std::string resp = RecvAll(fd);
  ::close(fd);
  EXPECT_EQ(StatusOf(resp), 431) << resp.substr(0, 120);
}

TEST(ObsHttp, Http2PrefaceIsRejected) {
  auto engine = MakeServingEngine(kPrim);
  const std::string resp =
      Fetch(engine->obs_http_port(),
            "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n");
  EXPECT_EQ(StatusOf(resp), 505);
}

TEST(ObsHttp, SlowClientTimesOutWith408) {
  EngineOptions options;
  options.obs_http.read_timeout_ms = 200;  // keep the test fast
  auto engine = MakeServingEngine(kPrim, options);
  const int fd = Connect(engine->obs_http_port());
  ASSERT_GE(fd, 0);
  // Send half a request and then stall past the read timeout.
  ASSERT_TRUE(SendAll(fd, "GET /metr"));
  const auto t0 = std::chrono::steady_clock::now();
  const std::string resp = RecvAll(fd);
  ::close(fd);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(StatusOf(resp), 408) << resp.substr(0, 120);
  // Bounded: the worker freed itself near the timeout, not seconds later.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
}

TEST(ObsHttp, DripFedRequestCannotStallPastDeadline) {
  EngineOptions options;
  options.obs_http.read_timeout_ms = 300;
  auto engine = MakeServingEngine(kPrim, options);
  const int fd = Connect(engine->obs_http_port());
  ASSERT_GE(fd, 0);
  // One byte every 50ms resets a naive per-recv timeout forever; the
  // absolute head deadline must cut the connection off anyway.
  const std::string req = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
  const auto t0 = std::chrono::steady_clock::now();
  std::string resp;
  for (char ch : req) {
    if (!SendAll(fd, std::string_view(&ch, 1))) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const auto waited = std::chrono::steady_clock::now() - t0;
    if (waited > std::chrono::seconds(5)) break;  // test backstop
  }
  resp = RecvAll(fd);
  ::close(fd);
  // Either the drip finished inside the deadline (tiny request) and got
  // 200, or the deadline fired with 408 — it must not hang: the recv
  // returning at all within the harness timeout is the real assertion.
  const int code = StatusOf(resp);
  EXPECT_TRUE(code == 200 || code == 408) << resp.substr(0, 120);
}

TEST(ObsHttp, PathLabelsAreClampedAgainstCardinalityFlooding) {
  auto engine = MakeServingEngine(kPrim);
  const uint16_t port = engine->obs_http_port();
  for (int i = 0; i < 32; ++i) {
    (void)Get(port, "/flood/" + std::to_string(i));
  }
  const std::string body = BodyOf(Get(port, "/metrics"));
  // All 32 probes collapsed onto the "other" label.
  EXPECT_EQ(body.find("path=\"/flood"), std::string::npos);
  EXPECT_NE(body.find("path=\"other\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency: scrapes against a live 8-thread run (TSan job covers this)
// ---------------------------------------------------------------------------

TEST(ObsHttp, ConcurrentScrapesDuringParallelRun) {
  EngineOptions options;
  options.eval.threads = 8;
  options.eval.parallel_min_rows = 2;
  options.limits.deadline_ms = 700;  // bounded stop ends the runaway
  auto engine = MakeServingEngine(kWideRunaway, options);
  const uint16_t port = engine->obs_http_port();

  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  const char* paths[] = {"/metrics", "/statusz", "/blackbox", "/healthz"};
  for (const char* path : paths) {
    scrapers.emplace_back([&, path] {
      while (!done.load(std::memory_order_acquire)) {
        const std::string resp = Get(port, path);
        if (StatusOf(resp) == 200) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        } else {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // One SSE client riding along for the whole run.
  std::thread sse([&] {
    const std::string resp = Get(port, "/progress");
    EXPECT_EQ(StatusOf(resp), 200);
    EXPECT_NE(resp.find("event: progress"), std::string::npos);
  });

  // A bounded stop surfaces as a DeadlineExceeded status; the engine
  // stays queryable and the server keeps serving.
  const Status st = engine->Run();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  EXPECT_EQ(engine->outcome().reason, TerminationReason::kDeadline);
  done.store(true, std::memory_order_release);
  for (auto& t : scrapers) t.join();
  sse.join();  // stream closed by the run's termination event

  EXPECT_GT(scrapes.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  // The engine stayed queryable after the bounded stop, and the server
  // still answers: guardrails and the endpoint compose.
  EXPECT_EQ(StatusOf(Get(port, "/healthz")), 200);
  EXPECT_EQ(StatusOf(Get(port, "/runs/last")), 200);
  auto statusz = ParseJson(BodyOf(Get(port, "/statusz")));
  ASSERT_TRUE(statusz.ok());
  EXPECT_EQ(statusz->Find("run_state")->string, "stopped");
}

TEST(ObsHttp, ServerStopsCleanlyWithOpenSseClient) {
  auto engine = MakeServingEngine(kPrim);
  const uint16_t port = engine->obs_http_port();
  // Open a stream that would idle forever (no run -> no termination
  // event), then destroy the engine: Stop() must unblock the stream
  // handler and join without hanging the test.
  const int fd = Connect(port);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "GET /progress HTTP/1.1\r\nHost: t\r\n\r\n"));
  char buf[256];
  ASSERT_GT(::recv(fd, buf, sizeof buf, 0), 0);  // head arrived, stream live
  engine.reset();  // joins server threads
  (void)RecvAll(fd);  // server closed its end
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Atomic metrics export (--metrics-out / .metrics PATH)
// ---------------------------------------------------------------------------

TEST(ObsHttp, WriteMetricsTextIsAtomicAndLeavesNoTempFile) {
  auto engine = MakeServingEngine(kPrim);
  ASSERT_TRUE(engine->Run().ok());
  const std::string path = ::testing::TempDir() + "/gdlog_metrics_atomic.prom";
  std::remove(path.c_str());
  ASSERT_TRUE(engine->WriteMetricsText(path).ok());
  // The temp file used for the atomic rename must be gone.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(text.find("gdlog_build_info"), std::string::npos);
  // A second write over the same path replaces it whole, never truncates
  // in place: a concurrent scraper sees old-or-new, not a torn file.
  ASSERT_TRUE(engine->WriteMetricsText(path).ok());
  std::remove(path.c_str());
}

TEST(ObsHttp, WriteMetricsTextFailsCleanlyOnBadDirectory) {
  auto engine = MakeServingEngine(kPrim);
  const std::string path =
      ::testing::TempDir() + "/no_such_dir_gdlog/metrics.prom";
  EXPECT_FALSE(engine->WriteMetricsText(path).ok());
  // Neither the target nor a stray temp file may exist afterwards.
  EXPECT_EQ(std::fopen(path.c_str(), "rb"), nullptr);
  EXPECT_EQ(std::fopen((path + ".tmp").c_str(), "rb"), nullptr);
}

// ---------------------------------------------------------------------------
// Progress tap unit coverage (ring semantics the SSE stream builds on)
// ---------------------------------------------------------------------------

TEST(ProgressTap, SinceReturnsOnlyNewEventsInOrder) {
  ProgressTap tap(/*capacity=*/8);
  for (int i = 1; i <= 3; ++i) {
    ProgressEvent e;
    e.kind = ProgressKind::kRound;
    e.round = static_cast<uint32_t>(i);
    tap.Record(e);
  }
  const auto all = tap.Since(0);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].round, 1u);
  EXPECT_EQ(all[2].round, 3u);
  const auto tail = tap.Since(all[1].seq);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].round, 3u);
  EXPECT_TRUE(tap.Since(all[2].seq).empty());
}

TEST(ProgressTap, LappedReaderSkipsToOldestRetained) {
  ProgressTap tap(/*capacity=*/4);
  for (uint32_t i = 1; i <= 100; ++i) {
    ProgressEvent e;
    e.kind = ProgressKind::kRound;
    e.round = i;
    tap.Record(e);
  }
  const auto events = tap.Since(0);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().round, 97u);
  EXPECT_EQ(events.back().round, 100u);
  ProgressEvent last;
  ASSERT_TRUE(tap.Last(&last));
  EXPECT_EQ(last.round, 100u);
}

TEST(ProgressTap, JsonRendersKindNamesAndTermination) {
  ProgressEvent e;
  e.seq = 9;
  e.kind = ProgressKind::kTermination;
  e.round = 4;
  e.termination = static_cast<int32_t>(TerminationReason::kCompleted);
  const std::string json = ProgressEventJson(e);
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << json;
  EXPECT_EQ(doc->Find("kind")->string, "termination");
  EXPECT_EQ(doc->Find("termination")->string, "completed");
  EXPECT_EQ(doc->Find("seq")->number, 9);
}

TEST(ProgressTap, ConcurrentReadersSeeOnlyConsistentEvents) {
  // Single writer lapping a tiny ring while readers poll: torn reads
  // would surface as events whose fields disagree (round != delta).
  ProgressTap tap(/*capacity=*/4);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      uint64_t cursor = 0;
      while (!stop.load(std::memory_order_acquire)) {
        for (const ProgressEvent& e : tap.Since(cursor)) {
          cursor = e.seq;
          // The writer keeps round == delta_rows == tuples; any slot
          // torn mid-write would break the equality.
          ASSERT_EQ(e.round, e.delta_rows);
          ASSERT_EQ(static_cast<uint64_t>(e.round), e.tuples);
        }
      }
    });
  }
  for (uint32_t i = 1; i <= 200000; ++i) {
    ProgressEvent e;
    e.kind = ProgressKind::kRound;
    e.round = i;
    e.delta_rows = i;
    e.tuples = i;
    tap.Record(e);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(tap.published(), 200000u);
}

}  // namespace
}  // namespace gdlog
