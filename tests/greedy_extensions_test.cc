// Tests for the extension algorithms beyond the paper's printed list:
// activity selection (Section 5's "scheduling algorithms") and Dijkstra
// single-source shortest paths.
#include <gtest/gtest.h>

#include <map>

#include "baselines/dijkstra.h"
#include "baselines/scheduling.h"
#include "greedy/dijkstra.h"
#include "greedy/scheduling.h"
#include "workload/graph_gen.h"
#include "workload/interval_gen.h"

namespace gdlog {
namespace {

TEST(Scheduling, TextbookInstance) {
  // CLRS activity-selection instance; optimum picks 4 activities.
  const std::vector<std::pair<int64_t, int64_t>> jobs = {
      {1, 4}, {3, 5}, {0, 6}, {5, 7}, {3, 9}, {5, 9},
      {6, 10}, {8, 11}, {8, 12}, {2, 14}, {12, 16}};
  auto result = SelectActivities(jobs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->jobs.size(), 4u);
  EXPECT_EQ(result->jobs[0].finish, 4);
  EXPECT_EQ(result->jobs.back().finish, 16);
}

TEST(Scheduling, MatchesBaselineOnRandomIntervals) {
  for (uint64_t seed : {2u, 47u, 301u}) {
    IntervalGenOptions opts;
    opts.seed = seed;
    const auto jobs = RandomIntervals(120, opts);
    auto result = SelectActivities(jobs);
    ASSERT_TRUE(result.ok());
    const auto base = BaselineSelectActivities(jobs);
    ASSERT_EQ(result->jobs.size(), base.size()) << "seed " << seed;
    for (size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(result->jobs[i].start, base[i].first);
      EXPECT_EQ(result->jobs[i].finish, base[i].second);
    }
  }
}

TEST(Scheduling, SelectionIsCompatibleAndMaximal) {
  IntervalGenOptions opts;
  opts.seed = 9;
  const auto jobs = RandomIntervals(80, opts);
  auto result = SelectActivities(jobs);
  ASSERT_TRUE(result.ok());
  // Pairwise compatible (selected in finish order).
  for (size_t i = 1; i < result->jobs.size(); ++i) {
    EXPECT_GE(result->jobs[i].start, result->jobs[i - 1].finish);
  }
  // Maximal: every unselected job overlaps some selected one.
  for (const auto& [s, f] : jobs) {
    bool selected = false, conflicts = false;
    for (const ScheduledJob& j : result->jobs) {
      if (j.start == s && j.finish == f) selected = true;
      if (s < j.finish && j.start < f) conflicts = true;
    }
    EXPECT_TRUE(selected || conflicts) << "[" << s << "," << f << ")";
  }
}

TEST(Scheduling, EmptyAndSingle) {
  auto empty = SelectActivities({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->jobs.empty());
  auto one = SelectActivities({{3, 8}});
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->jobs.size(), 1u);
}

TEST(Scheduling, StableModelVerified) {
  auto result = SelectActivities({{1, 4}, {3, 5}, {5, 7}, {6, 10}});
  ASSERT_TRUE(result.ok());
  auto check = result->engine->VerifyStableModel();
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_TRUE(check->stable) << check->diagnostic;
}

TEST(Dijkstra, TinyGraph) {
  Graph g;
  g.num_nodes = 4;
  g.edges = {{0, 1, 10}, {0, 2, 3}, {2, 1, 4}, {1, 3, 2}, {2, 3, 8}};
  auto result = DijkstraSssp(g, 0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::map<int64_t, int64_t> dist;
  for (const SettledNode& s : result->settled) dist[s.node] = s.distance;
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[2], 3);
  EXPECT_EQ(dist[1], 7);   // via 2
  EXPECT_EQ(dist[3], 9);   // via 2, 1
}

TEST(Dijkstra, MatchesBaselineOnRandomGraphs) {
  for (uint64_t seed : {6u, 60u, 600u}) {
    GraphGenOptions opts;
    opts.seed = seed;
    const Graph g = ConnectedRandomGraph(60, 180, opts);
    auto result = DijkstraSssp(g, 0);
    ASSERT_TRUE(result.ok());
    const auto base = BaselineDijkstra(g, 0);
    ASSERT_EQ(result->settled.size(), g.num_nodes);
    for (const SettledNode& s : result->settled) {
      EXPECT_EQ(s.distance, base[s.node]) << "node " << s.node;
    }
  }
}

TEST(Dijkstra, SettlingOrderIsNonDecreasingDistance) {
  GraphGenOptions opts;
  opts.seed = 77;
  const Graph g = ConnectedRandomGraph(40, 120, opts);
  auto result = DijkstraSssp(g, 0);
  ASSERT_TRUE(result.ok());
  int64_t prev = -1;
  for (const SettledNode& s : result->settled) {
    EXPECT_GE(s.distance, prev);
    prev = s.distance;
  }
}

TEST(Dijkstra, EachNodeSettledOnce) {
  GraphGenOptions opts;
  opts.seed = 12;
  const Graph g = ConnectedRandomGraph(30, 90, opts);
  auto result = DijkstraSssp(g, 0);
  ASSERT_TRUE(result.ok());
  std::map<int64_t, int> count;
  for (const SettledNode& s : result->settled) ++count[s.node];
  for (const auto& [node, c] : count) EXPECT_EQ(c, 1) << "node " << node;
}

TEST(Dijkstra, UnreachableNodesAbsent) {
  Graph g;
  g.num_nodes = 4;
  g.edges = {{0, 1, 5}};  // 2 and 3 isolated
  auto result = DijkstraSssp(g, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->settled.size(), 2u);
}

TEST(Dijkstra, StableModelVerified) {
  Graph g;
  g.num_nodes = 5;
  g.edges = {{0, 1, 2}, {1, 2, 3}, {0, 2, 9}, {2, 3, 1}, {3, 4, 4}};
  auto result = DijkstraSssp(g, 0);
  ASSERT_TRUE(result.ok());
  auto check = result->engine->VerifyStableModel();
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_TRUE(check->stable) << check->diagnostic;
}

}  // namespace
}  // namespace gdlog
