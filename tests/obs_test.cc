// Tests for the observability layer: JSON writer/parser round trips,
// histogram bucketing and quantiles, registry snapshots, and trace span
// nesting.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gdlog {
namespace {

TEST(Json, WriterProducesParsableDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("line \"1\"\n\ttab");
  w.Key("n").Int(-42);
  w.Key("u").UInt(18446744073709551615ull);
  w.Key("pi").Double(3.5);
  w.Key("flag").Bool(true);
  w.Key("nothing").Null();
  w.Key("xs").BeginArray().Int(1).Int(2).Int(3).EndArray();
  w.EndObject();

  auto doc = ParseJson(w.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("name")->string, "line \"1\"\n\ttab");
  EXPECT_EQ(doc->Find("n")->number, -42);
  EXPECT_EQ(doc->Find("pi")->number, 3.5);
  EXPECT_TRUE(doc->Find("flag")->boolean);
  EXPECT_EQ(doc->Find("nothing")->kind, JsonValue::Kind::kNull);
  ASSERT_TRUE(doc->Find("xs")->is_array());
  EXPECT_EQ(doc->Find("xs")->items.size(), 3u);
  EXPECT_EQ(doc->Find("xs")->items[2].number, 3);
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray().Double(0.0 / 0.0).Double(1e308 * 10).EndArray();
  auto doc = ParseJson(w.str());
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->items[0].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(doc->items[1].kind, JsonValue::Kind::kNull);
}

TEST(Json, ParserRejectsGarbage) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("'single'").ok());
  EXPECT_TRUE(ParseJson("  {\"a\": [true, null]}  ").ok());
}

TEST(Histogram, BucketingPlacesObservations) {
  Histogram h({10, 100, 1000});
  h.Observe(5);     // bucket 0 (<= 10)
  h.Observe(10);    // bucket 0 (boundary is inclusive)
  h.Observe(50);    // bucket 1
  h.Observe(999);   // bucket 2
  h.Observe(5000);  // overflow

  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 5 + 10 + 50 + 999 + 5000);
  EXPECT_EQ(h.min(), 5);
  EXPECT_EQ(h.max(), 5000);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(Histogram, QuantilesInterpolateAndClamp) {
  Histogram empty({10, 100});
  EXPECT_EQ(empty.Quantile(0.5), 0);

  Histogram h({10, 100, 1000});
  for (int i = 0; i < 100; ++i) h.Observe(50);  // all in bucket 1
  // Every observation sits in (10, 100]; any quantile must land there.
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, 10) << "q=" << q;
    EXPECT_LE(v, 100) << "q=" << q;
  }

  Histogram one({10});
  one.Observe(3);
  // Single observation: quantiles collapse toward it, never exceed max.
  EXPECT_LE(one.Quantile(0.99), 3);
}

TEST(Histogram, DefaultBoundsAreSortedAndPositive) {
  const auto bounds = Histogram::DefaultLatencyBoundsNs();
  ASSERT_GE(bounds.size(), 4u);
  EXPECT_GT(bounds.front(), 0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(Metrics, HandlesAreStableAndKeyedByLabels) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("rule.firings", {{"rule", "p/1"}});
  Counter* b = reg.GetCounter("rule.firings", {{"rule", "q/2"}});
  Counter* a2 = reg.GetCounter("rule.firings", {{"rule", "p/1"}});
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);

  a->Add(3);
  b->Add();
  EXPECT_EQ(a->value(), 3u);
  EXPECT_EQ(b->value(), 1u);

  // Force growth; earlier handles must stay valid.
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("filler", {{"i", std::to_string(i)}});
  }
  EXPECT_EQ(a->value(), 3u);

  Gauge* g = reg.GetGauge("queue.max");
  g->SetMax(7);
  g->SetMax(4);
  EXPECT_EQ(g->value(), 7);
}

TEST(Metrics, SnapshotRoundTripsThroughJson) {
  MetricsRegistry reg;
  reg.GetCounter("fires", {{"rule", "prm/4"}})->Add(11);
  reg.GetGauge("depth")->Set(-3);
  Histogram* h = reg.GetHistogram("lat", {}, {10, 100});
  h->Observe(7);
  h->Observe(70);

  auto doc = ParseJson(reg.SnapshotJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  const JsonValue* counters = doc->Find("counters");
  ASSERT_TRUE(counters != nullptr && counters->is_array());
  ASSERT_EQ(counters->items.size(), 1u);
  const JsonValue& c = counters->items[0];
  EXPECT_EQ(c.Find("name")->string, "fires");
  EXPECT_EQ(c.Find("value")->number, 11);
  EXPECT_EQ(c.Find("labels")->Find("rule")->string, "prm/4");

  const JsonValue* gauges = doc->Find("gauges");
  ASSERT_TRUE(gauges != nullptr && gauges->is_array());
  EXPECT_EQ(gauges->items[0].Find("value")->number, -3);

  const JsonValue* hists = doc->Find("histograms");
  ASSERT_TRUE(hists != nullptr && hists->is_array());
  const JsonValue& hj = hists->items[0];
  EXPECT_EQ(hj.Find("count")->number, 2);
  EXPECT_EQ(hj.Find("sum")->number, 77);
  EXPECT_EQ(hj.Find("min")->number, 7);
  EXPECT_EQ(hj.Find("max")->number, 70);
  EXPECT_TRUE(hj.Find("p50") != nullptr);
}

TEST(Trace, SpansNestAndRecordContainment) {
  Tracer tracer(/*sample_every=*/1);
  {
    TraceSpan outer(&tracer, "outer", "test");
    outer.AddArg("n", 42);
    {
      TraceSpan inner(&tracer, "inner", "test");
    }
    tracer.Instant("tick", "test", {{"k", 1}});
  }
  ASSERT_EQ(tracer.events().size(), 3u);
  // Inner closes first, then the instant, then the outer span.
  const TraceEvent& inner = tracer.events()[0];
  const TraceEvent& tick = tracer.events()[1];
  const TraceEvent& outer = tracer.events()[2];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(tick.phase, 'i');
  EXPECT_EQ(outer.phase, 'X');
  // Containment: outer starts no later and ends no earlier than inner.
  EXPECT_LE(outer.ts_ns, inner.ts_ns);
  EXPECT_GE(outer.ts_ns + outer.dur_ns, inner.ts_ns + inner.dur_ns);
  ASSERT_EQ(outer.args.size(), 1u);
  EXPECT_EQ(outer.args[0].first, "n");
  EXPECT_EQ(outer.args[0].second, 42);
}

TEST(Trace, NullTracerSpansAreNoops) {
  TraceSpan span(nullptr, "ghost", "test");
  span.AddArg("k", 1);  // must not crash
}

TEST(Trace, SamplingKeepsOneInEveryPeriod) {
  Tracer tracer(/*sample_every=*/4);
  int kept = 0;
  for (int i = 0; i < 40; ++i) {
    if (tracer.Sample()) ++kept;
  }
  EXPECT_EQ(kept, 10);
}

TEST(Trace, ChromeTraceFileIsValidJson) {
  Tracer tracer;
  {
    TraceSpan span(&tracer, "phase", "engine");
  }
  tracer.Instant("mark", "engine");

  const std::string path = ::testing::TempDir() + "/gdlog_obs_trace.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(path).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  ASSERT_EQ(events->items.size(), 2u);
  const JsonValue& span = events->items[0];
  EXPECT_EQ(span.Find("name")->string, "phase");
  EXPECT_EQ(span.Find("ph")->string, "X");
  EXPECT_TRUE(span.Find("ts") != nullptr);
  EXPECT_TRUE(span.Find("dur") != nullptr);
  EXPECT_EQ(doc->Find("displayTimeUnit")->string, "ms");
}

}  // namespace
}  // namespace gdlog
