// Tests for the observability layer: JSON writer/parser round trips,
// histogram bucketing and quantiles, registry snapshots, and trace span
// nesting.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gdlog {
namespace {

TEST(Json, WriterProducesParsableDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("line \"1\"\n\ttab");
  w.Key("n").Int(-42);
  w.Key("u").UInt(18446744073709551615ull);
  w.Key("pi").Double(3.5);
  w.Key("flag").Bool(true);
  w.Key("nothing").Null();
  w.Key("xs").BeginArray().Int(1).Int(2).Int(3).EndArray();
  w.EndObject();

  auto doc = ParseJson(w.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("name")->string, "line \"1\"\n\ttab");
  EXPECT_EQ(doc->Find("n")->number, -42);
  EXPECT_EQ(doc->Find("pi")->number, 3.5);
  EXPECT_TRUE(doc->Find("flag")->boolean);
  EXPECT_EQ(doc->Find("nothing")->kind, JsonValue::Kind::kNull);
  ASSERT_TRUE(doc->Find("xs")->is_array());
  EXPECT_EQ(doc->Find("xs")->items.size(), 3u);
  EXPECT_EQ(doc->Find("xs")->items[2].number, 3);
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray().Double(0.0 / 0.0).Double(1e308 * 10).EndArray();
  auto doc = ParseJson(w.str());
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->items[0].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(doc->items[1].kind, JsonValue::Kind::kNull);
}

TEST(Json, ParserRejectsGarbage) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("'single'").ok());
  EXPECT_TRUE(ParseJson("  {\"a\": [true, null]}  ").ok());
}

TEST(Histogram, SmallValuesGetExactBuckets) {
  // Values below kSubBuckets each own one bucket: no quantization at all.
  Histogram h;
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v) << "v=" << v;
    EXPECT_EQ(Histogram::BucketUpperEdge(v), v) << "v=" << v;
  }
  h.Record(5);
  h.Record(5);
  h.Record(7);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 17u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 7u);
  const auto buckets = h.NonZeroBuckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].upper, 5u);
  EXPECT_EQ(buckets[0].count, 2u);
  EXPECT_EQ(buckets[1].upper, 7u);
  EXPECT_EQ(buckets[1].count, 1u);
}

TEST(Histogram, LogLinearRelativeErrorIsBounded) {
  // Above the exact range, the bucket edge quantizes with relative error
  // at most 2/kSubBuckets (~6.25%) across the whole uint64 range.
  const double max_rel = 2.0 / Histogram::kSubBuckets;
  const std::vector<uint64_t> probes = {
      33, 100, 1000, 123456, uint64_t{1} << 40,
      (uint64_t{1} << 40) + 12345, UINT64_MAX / 2};
  for (uint64_t v : probes) {
    const size_t i = Histogram::BucketIndex(v);
    const uint64_t upper = Histogram::BucketUpperEdge(i);
    ASSERT_GE(upper, v) << "v=" << v;
    const uint64_t lower = i == 0 ? 0 : Histogram::BucketUpperEdge(i - 1);
    ASSERT_LT(lower, v) << "v=" << v;
    EXPECT_LE(static_cast<double>(upper - lower) / static_cast<double>(v),
              max_rel)
        << "v=" << v;
  }
}

TEST(Histogram, BucketEdgesAreStrictlyMonotonic) {
  uint64_t prev = Histogram::BucketUpperEdge(0);
  for (size_t i = 1; i < Histogram::kNumBuckets; ++i) {
    const uint64_t edge = Histogram::BucketUpperEdge(i);
    ASSERT_GT(edge, prev) << "bucket " << i;
    // BucketIndex(upper edge) must map back into bucket i: the edges and
    // the index function agree on where boundaries sit.
    ASSERT_EQ(Histogram::BucketIndex(edge), i) << "bucket " << i;
    prev = edge;
  }
}

TEST(Histogram, QuantilesInterpolateAndClamp) {
  Histogram empty;
  EXPECT_EQ(empty.Quantile(0.5), 0);

  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(50);
  // Identical observations: every quantile collapses onto the value
  // (clamped to the observed [min, max], not just the bucket).
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_EQ(h.Quantile(q), 50.0) << "q=" << q;
  }

  Histogram spread;
  for (uint64_t v = 1; v <= 1000; ++v) spread.Record(v);
  const double p50 = spread.Quantile(0.5);
  const double p99 = spread.Quantile(0.99);
  EXPECT_GT(p99, p50);
  EXPECT_NEAR(p50, 500.0, 500.0 * 0.07);   // within the 6.25% error bound
  EXPECT_NEAR(p99, 990.0, 990.0 * 0.07);
  EXPECT_LE(spread.Quantile(1.0), 1000.0);

  Histogram one;
  one.Record(3);
  EXPECT_LE(one.Quantile(0.99), 3);
}

TEST(Histogram, ObserveClampsNegativesAndHugeDoubles) {
  Histogram h;
  h.Observe(-5.0);
  h.Observe(1e30);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_GE(h.max(), 1ull << 62);
}

TEST(Metrics, HandlesAreStableAndKeyedByLabels) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("rule.firings", {{"rule", "p/1"}});
  Counter* b = reg.GetCounter("rule.firings", {{"rule", "q/2"}});
  Counter* a2 = reg.GetCounter("rule.firings", {{"rule", "p/1"}});
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);

  a->Add(3);
  b->Add();
  EXPECT_EQ(a->value(), 3u);
  EXPECT_EQ(b->value(), 1u);

  // Force growth; earlier handles must stay valid.
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("filler", {{"i", std::to_string(i)}});
  }
  EXPECT_EQ(a->value(), 3u);

  Gauge* g = reg.GetGauge("queue.max");
  g->SetMax(7);
  g->SetMax(4);
  EXPECT_EQ(g->value(), 7);
}

TEST(Metrics, SnapshotRoundTripsThroughJson) {
  MetricsRegistry reg;
  reg.GetCounter("fires", {{"rule", "prm/4"}})->Add(11);
  reg.GetGauge("depth")->Set(-3);
  Histogram* h = reg.GetHistogram("lat");
  h->Record(7);
  h->Record(70);

  auto doc = ParseJson(reg.SnapshotJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  const JsonValue* counters = doc->Find("counters");
  ASSERT_TRUE(counters != nullptr && counters->is_array());
  ASSERT_EQ(counters->items.size(), 1u);
  const JsonValue& c = counters->items[0];
  EXPECT_EQ(c.Find("name")->string, "fires");
  EXPECT_EQ(c.Find("value")->number, 11);
  EXPECT_EQ(c.Find("labels")->Find("rule")->string, "prm/4");

  const JsonValue* gauges = doc->Find("gauges");
  ASSERT_TRUE(gauges != nullptr && gauges->is_array());
  EXPECT_EQ(gauges->items[0].Find("value")->number, -3);

  const JsonValue* hists = doc->Find("histograms");
  ASSERT_TRUE(hists != nullptr && hists->is_array());
  const JsonValue& hj = hists->items[0];
  EXPECT_EQ(hj.Find("count")->number, 2);
  EXPECT_EQ(hj.Find("sum")->number, 77);
  EXPECT_EQ(hj.Find("min")->number, 7);
  EXPECT_EQ(hj.Find("max")->number, 70);
  EXPECT_TRUE(hj.Find("p50") != nullptr);
}

TEST(Metrics, FindNeverCreates) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.FindCounter("missing"), nullptr);
  EXPECT_EQ(reg.FindGauge("missing"), nullptr);
  EXPECT_EQ(reg.FindHistogram("missing"), nullptr);
  EXPECT_EQ(reg.size(), 0u);

  Counter* c = reg.GetCounter("hits", {{"rule", "p/1"}});
  EXPECT_EQ(reg.FindCounter("hits", {{"rule", "p/1"}}), c);
  EXPECT_EQ(reg.FindCounter("hits"), nullptr);  // labels are part of the key
  Histogram* h = reg.GetHistogram("lat");
  EXPECT_EQ(reg.FindHistogram("lat"), h);
}

TEST(Metrics, SnapshotDeltaSubtractsMonotonics) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("inserts");
  Gauge* g = reg.GetGauge("depth");
  Histogram* h = reg.GetHistogram("lat");
  c->Add(10);
  g->Set(5);
  h->Record(100);
  const MetricsSnapshot before = reg.Snapshot();
  c->Add(7);
  g->Set(2);
  h->Record(50);
  h->Record(60);
  const MetricsSnapshot after = reg.Snapshot();

  const MetricsSnapshot d = MetricsSnapshot::Delta(before, after);
  std::map<std::string, const MetricsSnapshot::Sample*> by_name;
  for (const auto& s : d.samples) by_name[s.name] = &s;
  ASSERT_EQ(by_name.count("inserts"), 1u);
  EXPECT_EQ(by_name["inserts"]->value, 7u);   // counter: after - before
  ASSERT_EQ(by_name.count("depth"), 1u);
  EXPECT_EQ(by_name["depth"]->gauge, 2);      // gauge: keeps `after`
  ASSERT_EQ(by_name.count("lat"), 1u);
  EXPECT_EQ(by_name["lat"]->value, 2u);       // histogram count delta
  EXPECT_EQ(by_name["lat"]->sum, 110u);       // histogram sum delta
}

// Minimal Prometheus text-format (0.0.4) checker: every non-comment line
// must be `name[{labels}] value`, names must match the metric name
// charset, every name must be typed by a preceding # TYPE line, and each
// histogram must expose a cumulative _bucket series ending in le="+Inf"
// whose final count equals _count.
void CheckPrometheusText(const std::string& text) {
  std::map<std::string, std::string> type_of;    // base name -> kind
  std::map<std::string, uint64_t> inf_buckets;   // series key -> +Inf count
  std::map<std::string, uint64_t> hist_counts;   // series key -> _count
  std::map<std::string, uint64_t> last_bucket;   // cumulative check
  std::istringstream in(text);
  std::string line;
  auto valid_name = [](const std::string& n) {
    if (n.empty() || (!std::isalpha(static_cast<unsigned char>(n[0])) &&
                      n[0] != '_' && n[0] != ':')) {
      return false;
    }
    for (char ch : n) {
      if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '_' &&
          ch != ':') {
        return false;
      }
    }
    return true;
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kw, name, kind;
      ls >> hash >> kw >> name >> kind;
      ASSERT_EQ(kw, "TYPE") << line;
      ASSERT_TRUE(valid_name(name)) << line;
      ASSERT_TRUE(kind == "counter" || kind == "gauge" ||
                  kind == "histogram")
          << line;
      ASSERT_EQ(type_of.count(name), 0u) << "duplicate TYPE: " << line;
      type_of[name] = kind;
      continue;
    }
    // Sample line: name[{labels}] value
    const size_t brace = line.find('{');
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name =
        line.substr(0, brace == std::string::npos
                           ? line.find(' ')
                           : brace);
    ASSERT_TRUE(valid_name(name)) << line;
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    ASSERT_EQ(*end, '\0') << "unparsable value: " << line;
    if (brace != std::string::npos) {
      ASSERT_NE(line.find('}'), std::string::npos) << line;
    }
    // Histogram series bookkeeping. The series key is the name plus its
    // non-le labels, so labeled histograms are checked independently.
    auto strip_suffix = [&](const char* suffix) {
      const size_t n = std::strlen(suffix);
      return name.size() > n && name.compare(name.size() - n, n, suffix) == 0
                 ? name.substr(0, name.size() - n)
                 : std::string();
    };
    const std::string bucket_base = strip_suffix("_bucket");
    const std::string count_base = strip_suffix("_count");
    if (!bucket_base.empty() && type_of.count(bucket_base) &&
        type_of[bucket_base] == "histogram") {
      ASSERT_NE(brace, std::string::npos) << "bucket without le: " << line;
      std::string labels = line.substr(brace, line.find('}') - brace + 1);
      // The le label starts after '{' or ',' — a bare find("le=\"")
      // would also match inside e.g. rule="...".
      size_t le = labels.find("{le=\"");
      if (le == std::string::npos) le = labels.find(",le=\"");
      ASSERT_NE(le, std::string::npos) << line;
      ++le;  // past the delimiter
      const size_t le_end = labels.find('"', le + 4);
      const std::string le_val = labels.substr(le + 4, le_end - le - 4);
      // Series key: everything except the le label (and the comma it
      // left behind when other labels precede or follow it).
      std::string rest = labels.substr(0, le) + labels.substr(le_end + 1);
      size_t comma;
      while ((comma = rest.find(",}")) != std::string::npos) {
        rest.erase(comma, 1);
      }
      while ((comma = rest.find("{,")) != std::string::npos) {
        rest.erase(comma + 1, 1);
      }
      std::string key = bucket_base + rest;
      const uint64_t n = std::strtoull(value.c_str(), nullptr, 10);
      ASSERT_GE(n, last_bucket[key]) << "non-cumulative: " << line;
      last_bucket[key] = n;
      if (le_val == "+Inf") inf_buckets[key] = n;
    } else if (!count_base.empty() && type_of.count(count_base) &&
               type_of[count_base] == "histogram") {
      std::string key = count_base;
      if (brace != std::string::npos) {
        key += line.substr(brace, line.find('}') - brace + 1);
      }
      hist_counts[key] = std::strtoull(value.c_str(), nullptr, 10);
    }
  }
  for (const auto& [key, n] : hist_counts) {
    // Match the _count series against its +Inf bucket. The bucket key has
    // the le label removed, so a label-free histogram's keys line up; a
    // labeled one differs only by the brace content ordering, which the
    // writer emits deterministically.
    auto it = inf_buckets.find(key.find('{') == std::string::npos
                                   ? key + "{}"
                                   : key);
    if (it == inf_buckets.end()) it = inf_buckets.find(key);
    ASSERT_NE(it, inf_buckets.end()) << "no +Inf bucket for " << key;
    EXPECT_EQ(it->second, n) << key;
  }
}

TEST(Metrics, PrometheusTextIsWellFormed) {
  MetricsRegistry reg;
  reg.GetCounter("exec.inserts")->Add(42);
  reg.GetCounter("rule.firings", {{"rule", "prm/4#1"}})->Add(3);
  reg.GetGauge("memory.tracked_peak_bytes")->Set(12345);
  Histogram* h = reg.GetHistogram("rule.apply_ns", {{"rule", "prm/4#1"}});
  h->Record(100);
  h->Record(2000);
  h->Record(2000000);
  Histogram* d = reg.GetHistogram("seminaive.delta_rows");
  d->Record(0);
  d->Record(17);

  const std::string text = reg.PrometheusText();
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("gdlog_exec_inserts_total 42"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gdlog_rule_apply_ns_bucket"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  CheckPrometheusText(text);
}

TEST(Metrics, PrometheusEscapesHostileLabelValues) {
  MetricsRegistry reg;
  reg.GetCounter("rule.firings", {{"rule", "we\"ird\\p\n/1"}})->Add(1);
  const std::string text = reg.PrometheusText();
  // The raw quote, backslash, and newline must come out escaped.
  EXPECT_NE(text.find("we\\\"ird\\\\p\\n/1"), std::string::npos) << text;
  CheckPrometheusText(text);
}

// -- Flight recorder --------------------------------------------------------

TEST(FlightRecorder, RecordsAndDumpsInOrder) {
  FlightRecorder rec(/*capacity=*/16);
  rec.Record(FlightEventKind::kRunStart, 3, 7);
  rec.Record(FlightEventKind::kRoundStart, 1, 10);
  rec.Record(FlightEventKind::kRoundEnd, 1, 4);
  rec.Record(FlightEventKind::kTermination, 0, 1);

  const auto events = rec.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kRunStart);
  EXPECT_EQ(events[0].a0, 3);
  EXPECT_EQ(events[0].a1, 7);
  EXPECT_EQ(events[3].kind, FlightEventKind::kTermination);
  // Sequence numbers are assigned in record order.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }

  const std::string dump = rec.DumpText();
  EXPECT_NE(dump.find("run-start"), std::string::npos) << dump;
  EXPECT_NE(dump.find("termination"), std::string::npos);
  EXPECT_NE(dump.find("a0=3"), std::string::npos);
}

TEST(FlightRecorder, RingKeepsOnlyTheNewestEvents) {
  FlightRecorder rec(/*capacity=*/8);
  for (int i = 0; i < 100; ++i) {
    rec.Record(FlightEventKind::kRoundStart, i, 0);
  }
  const auto events = rec.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The retained window is the last 8 records, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a0, static_cast<int64_t>(92 + i));
  }
  EXPECT_EQ(rec.recorded(), 100u);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder rec(/*capacity=*/100);
  EXPECT_EQ(rec.capacity(), 128u);
  FlightRecorder rec1(/*capacity=*/0);
  EXPECT_GE(rec1.capacity(), 1u);
}

TEST(FlightRecorder, EveryKindHasAName) {
  for (int k = 0; k <= static_cast<int>(FlightEventKind::kTermination);
       ++k) {
    const std::string_view name =
        FlightEventKindName(static_cast<FlightEventKind>(k));
    EXPECT_FALSE(name.empty()) << "kind " << k;
    EXPECT_NE(name, "?") << "kind " << k;
  }
}

TEST(Trace, SpansNestAndRecordContainment) {
  Tracer tracer(/*sample_every=*/1);
  {
    TraceSpan outer(&tracer, "outer", "test");
    outer.AddArg("n", 42);
    {
      TraceSpan inner(&tracer, "inner", "test");
    }
    tracer.Instant("tick", "test", {{"k", 1}});
  }
  ASSERT_EQ(tracer.events().size(), 3u);
  // Inner closes first, then the instant, then the outer span.
  const TraceEvent& inner = tracer.events()[0];
  const TraceEvent& tick = tracer.events()[1];
  const TraceEvent& outer = tracer.events()[2];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(tick.phase, 'i');
  EXPECT_EQ(outer.phase, 'X');
  // Containment: outer starts no later and ends no earlier than inner.
  EXPECT_LE(outer.ts_ns, inner.ts_ns);
  EXPECT_GE(outer.ts_ns + outer.dur_ns, inner.ts_ns + inner.dur_ns);
  ASSERT_EQ(outer.args.size(), 1u);
  EXPECT_EQ(outer.args[0].first, "n");
  EXPECT_EQ(outer.args[0].second, 42);
}

TEST(Trace, NullTracerSpansAreNoops) {
  TraceSpan span(nullptr, "ghost", "test");
  span.AddArg("k", 1);  // must not crash
}

TEST(Trace, SamplingKeepsOneInEveryPeriod) {
  Tracer tracer(/*sample_every=*/4);
  int kept = 0;
  for (int i = 0; i < 40; ++i) {
    if (tracer.Sample()) ++kept;
  }
  EXPECT_EQ(kept, 10);
}

TEST(Trace, ChromeTraceFileIsValidJson) {
  Tracer tracer;
  {
    TraceSpan span(&tracer, "phase", "engine");
  }
  tracer.Instant("mark", "engine");

  const std::string path = ::testing::TempDir() + "/gdlog_obs_trace.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(path).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  ASSERT_EQ(events->items.size(), 2u);
  const JsonValue& span = events->items[0];
  EXPECT_EQ(span.Find("name")->string, "phase");
  EXPECT_EQ(span.Find("ph")->string, "X");
  EXPECT_TRUE(span.Find("ts") != nullptr);
  EXPECT_TRUE(span.Find("dur") != nullptr);
  EXPECT_EQ(doc->Find("displayTimeUnit")->string, "ms");
}

}  // namespace
}  // namespace gdlog
