// E1 correctness: declarative Prim (Example 4) against the procedural
// heap-based Prim on random connected graphs.
#include "greedy/prim.h"

#include <gtest/gtest.h>

#include <set>

#include "baselines/prim.h"
#include "workload/graph_gen.h"

namespace gdlog {
namespace {

TEST(GreedyPrim, TinyTriangle) {
  Graph g;
  g.num_nodes = 3;
  g.edges = {{0, 1, 10}, {1, 2, 5}, {0, 2, 20}};
  auto result = PrimMst(g, /*root=*/0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_cost, 15);
  ASSERT_EQ(result->edges.size(), 2u);
  // Stages must be consecutive 1, 2 from the seed at 0.
  EXPECT_EQ(result->edges[0].stage, 1);
  EXPECT_EQ(result->edges[1].stage, 2);
}

TEST(GreedyPrim, MatchesBaselineWeightOnRandomGraphs) {
  for (uint64_t seed : {7u, 21u, 99u}) {
    GraphGenOptions opts;
    opts.seed = seed;
    const Graph g = ConnectedRandomGraph(40, 80, opts);
    auto result = PrimMst(g, 0);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const BaselineMst base = BaselinePrim(g, 0);
    EXPECT_EQ(result->total_cost, base.total_cost) << "seed " << seed;
    EXPECT_EQ(result->edges.size(), base.edges.size());
    EXPECT_EQ(result->edges.size(), g.num_nodes - 1);
  }
}

TEST(GreedyPrim, TreeIsValid) {
  GraphGenOptions opts;
  opts.seed = 5;
  const Graph g = ConnectedRandomGraph(30, 60, opts);
  auto result = PrimMst(g, 0);
  ASSERT_TRUE(result.ok());
  // Each non-root node entered exactly once, parent already in tree.
  std::set<int64_t> in_tree{0};
  for (const MstEdge& e : result->edges) {  // stage order
    EXPECT_TRUE(in_tree.count(e.parent))
        << "parent " << e.parent << " not yet in tree";
    EXPECT_FALSE(in_tree.count(e.node)) << "node " << e.node << " re-entered";
    in_tree.insert(e.node);
  }
  EXPECT_EQ(in_tree.size(), g.num_nodes);
}

TEST(GreedyPrim, EdgeSelectionMatchesBaselineExactly) {
  // Unique weights make the MST unique: compare edge sets, not just cost.
  GraphGenOptions opts;
  opts.seed = 1234;
  const Graph g = ConnectedRandomGraph(25, 50, opts);
  auto result = PrimMst(g, 0);
  ASSERT_TRUE(result.ok());
  const BaselineMst base = BaselinePrim(g, 0);
  std::set<std::pair<int64_t, int64_t>> engine_edges, base_edges;
  for (const MstEdge& e : result->edges) {
    engine_edges.insert({std::min(e.parent, e.node), std::max(e.parent, e.node)});
  }
  for (const GraphEdge& e : base.edges) {
    base_edges.insert({std::min<int64_t>(e.u, e.v), std::max<int64_t>(e.u, e.v)});
  }
  EXPECT_EQ(engine_edges, base_edges);
}

TEST(GreedyPrim, CongruenceMergeKeepsQueueSmall) {
  // The paper's r-congruence: Q_r holds at most one candidate per target
  // node Y, so the queue high-water mark is bounded by n, not e.
  GraphGenOptions opts;
  opts.seed = 77;
  const Graph g = CompleteGraph(24, opts);  // e = 276 >> n = 24
  auto result = PrimMst(g, 0);
  ASSERT_TRUE(result.ok());
  const CandidateQueueStats* qs = result->engine->QueueStats(0);
  ASSERT_NE(qs, nullptr);
  EXPECT_LE(qs->max_queue, static_cast<size_t>(g.num_nodes));
  EXPECT_GT(qs->inserted, static_cast<uint64_t>(g.num_nodes));
}

TEST(GreedyPrim, FullModeStillCorrect) {
  EngineOptions eopts;
  eopts.eval.use_merge_congruence = false;
  GraphGenOptions opts;
  opts.seed = 42;
  const Graph g = ConnectedRandomGraph(30, 90, opts);
  auto merged = PrimMst(g, 0);
  auto full = PrimMst(g, 0, eopts);
  ASSERT_TRUE(merged.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(merged->total_cost, full->total_cost);
}

TEST(GreedyPrim, StableModelVerified) {
  GraphGenOptions opts;
  opts.seed = 3;
  const Graph g = ConnectedRandomGraph(8, 8, opts);
  auto result = PrimMst(g, 0);
  ASSERT_TRUE(result.ok());
  auto check = result->engine->VerifyStableModel();
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_TRUE(check->stable) << check->diagnostic;
}

}  // namespace
}  // namespace gdlog
