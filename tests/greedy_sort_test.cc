// E2 correctness: declarative sort (Example 5) against procedural
// heap-sort.
#include "greedy/sort.h"

#include <gtest/gtest.h>

#include "baselines/heapsort.h"
#include "workload/relation_gen.h"

namespace gdlog {
namespace {

TEST(GreedySort, SmallFixed) {
  auto result = SortRelation({{1, 30}, {2, 10}, {3, 20}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->sorted.size(), 3u);
  EXPECT_EQ(result->sorted[0].second, 10);
  EXPECT_EQ(result->sorted[1].second, 20);
  EXPECT_EQ(result->sorted[2].second, 30);
}

TEST(GreedySort, MatchesHeapSortOnRandomInputs) {
  for (uint64_t seed : {1u, 17u, 400u}) {
    RelationGenOptions opts;
    opts.seed = seed;
    const auto tuples = RandomCostedRelation(200, opts);
    auto result = SortRelation(tuples);
    ASSERT_TRUE(result.ok());
    const auto expected = BaselineHeapSort(tuples);
    ASSERT_EQ(result->sorted.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result->sorted[i].second, expected[i].second) << "at " << i;
      EXPECT_EQ(result->sorted[i].first, expected[i].first) << "at " << i;
    }
  }
}

TEST(GreedySort, DuplicateCostsAllEmitted) {
  RelationGenOptions opts;
  opts.seed = 5;
  opts.unique_costs = false;
  opts.max_cost = 10;  // force many collisions
  const auto tuples = RandomCostedRelation(100, opts);
  auto result = SortRelation(tuples);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sorted.size(), tuples.size());
  for (size_t i = 1; i < result->sorted.size(); ++i) {
    EXPECT_LE(result->sorted[i - 1].second, result->sorted[i].second);
  }
}

TEST(GreedySort, EmptyAndSingleton) {
  auto empty = SortRelation({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->sorted.empty());
  auto one = SortRelation({{42, 7}});
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->sorted.size(), 1u);
  EXPECT_EQ(one->sorted[0].first, 42);
}

TEST(GreedySort, QueueHoldsAllTuples) {
  // Section 6: "the predicate p is first stored as a priority queue" —
  // congruence classes are singletons, so |Q| peaks at n.
  const auto tuples = RandomCostedRelation(64, {});
  auto result = SortRelation(tuples);
  ASSERT_TRUE(result.ok());
  const CandidateQueueStats* qs = result->engine->QueueStats(0);
  ASSERT_NE(qs, nullptr);
  EXPECT_EQ(qs->max_queue, tuples.size());
  EXPECT_EQ(qs->fired, tuples.size());
}

TEST(GreedySort, StableModelVerified) {
  const auto tuples = RandomCostedRelation(10, {});
  auto result = SortRelation(tuples);
  ASSERT_TRUE(result.ok());
  auto check = result->engine->VerifyStableModel();
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_TRUE(check->stable) << check->diagnostic;
}

}  // namespace
}  // namespace gdlog
