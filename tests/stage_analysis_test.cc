// Unit tests for the Section 4 compile-time machinery: dependency
// graph, recursive cliques, stage inference, and the
// stage-stratification test on the paper's own examples.
#include "analysis/stage.h"

#include <gtest/gtest.h>

#include "analysis/dep_graph.h"
#include "analysis/diagnostics.h"
#include "parser/parser.h"

namespace gdlog {
namespace {

Program MustParse(ValueStore* store, const char* text) {
  auto prog = ParseProgram(store, text);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  return std::move(prog).value();
}

StageAnalysis MustAnalyze(const Program& p) {
  auto a = AnalyzeStages(p);
  EXPECT_TRUE(a.ok()) << a.status().ToString();
  return std::move(a).value();
}

const CliqueStageInfo& CliqueOf(const StageAnalysis& a,
                                const std::string& name, uint32_t arity) {
  const PredIndex p = a.graph->Lookup(name, arity);
  EXPECT_NE(p, kNoPred);
  return a.cliques[a.graph->scc_of(p)];
}

TEST(DepGraph, SccAndNegation) {
  ValueStore store;
  Program p = MustParse(&store, R"(
    tc(X, Y) <- e(X, Y).
    tc(X, Z) <- tc(X, Y), e(Y, Z).
    out(X) <- v(X), not tc(X, X).
  )");
  DependencyGraph g(p);
  const PredIndex tc = g.Lookup("tc", 2);
  const PredIndex out = g.Lookup("out", 1);
  ASSERT_NE(tc, kNoPred);
  ASSERT_NE(out, kNoPred);
  EXPECT_TRUE(g.IsRecursive(g.scc_of(tc)));
  EXPECT_FALSE(g.IsRecursive(g.scc_of(out)));
  EXPECT_NE(g.scc_of(tc), g.scc_of(out));
  auto strata = g.ComputeStrata();
  ASSERT_TRUE(strata.ok());
  EXPECT_GT((*strata)[out], (*strata)[tc]);
}

TEST(DepGraph, RejectsNegativeCycle) {
  ValueStore store;
  Program p = MustParse(&store, R"(
    p(X) <- q(X), not r(X).
    r(X) <- q(X), not p(X).
  )");
  DependencyGraph g(p);
  EXPECT_FALSE(g.ComputeStrata().ok());
}

TEST(StageAnalysis, PrimIsStageStratified) {
  ValueStore store;
  Program p = MustParse(&store, R"(
    prm(nil, a, 0, 0).
    prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I,
                       least(C, I), choice(Y, X).
    new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
  )");
  StageAnalysis a = MustAnalyze(p);
  EXPECT_EQ(CliqueOf(a, "prm", 4).cls, CliqueClass::kStageStratified);
  // Stage arguments: prm at 3, new_g at 3.
  EXPECT_EQ(a.stage_arg[a.graph->Lookup("prm", 4)], 3);
  EXPECT_EQ(a.stage_arg[a.graph->Lookup("new_g", 4)], 3);
  // Rule kinds: fact (exit), next, flat.
  EXPECT_EQ(a.rule_info[1].kind, RuleKind::kNext);
  EXPECT_EQ(a.rule_info[2].kind, RuleKind::kFlat);
}

TEST(StageAnalysis, PrimWithGlobalLeastLosesStratification) {
  // The paper's Section 4 remark: replacing least(C, I) by least(C, _)
  // loses stage-stratification (the negated copy's stage variables are
  // no longer tied to the head's stage variable).
  ValueStore store;
  Program p = MustParse(&store, R"(
    prm(nil, a, 0, 0).
    prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I,
                       least(C), choice(Y, X).
    new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
  )");
  StageAnalysis a = MustAnalyze(p);
  EXPECT_NE(CliqueOf(a, "prm", 4).cls, CliqueClass::kStageStratified);
}

TEST(StageAnalysis, SortRecursionOnlyThroughNext) {
  // Example 5's recursion is invisible without the next expansion.
  ValueStore store;
  Program p = MustParse(&store, R"(
    sp(nil, 0, 0).
    sp(X, C, I) <- next(I), p(X, C), least(C, I).
  )");
  StageAnalysis a = MustAnalyze(p);
  const CliqueStageInfo& cl = CliqueOf(a, "sp", 3);
  EXPECT_EQ(cl.cls, CliqueClass::kStageStratified);
  EXPECT_TRUE(a.graph->IsRecursive(a.graph->scc_of(a.graph->Lookup("sp", 3))));
}

TEST(StageAnalysis, HuffmanStageArgsInferredThroughMax) {
  ValueStore store;
  Program p = MustParse(&store, R"(
    h(X, C, 0) <- letter(X, C).
    h(t(X, Y), C, I) <- next(I), feasible(t(X, Y), C, J), J < I,
                        least(C, I), choice(X, I), choice(Y, I).
    feasible(t(X, Y), C, I) <- h(X, C1, J), h(Y, C2, K),
                               not (subtree(X, L1), L1 < I),
                               not (subtree(Y, L2), L2 < I),
                               I = max(J, K), X != Y, C = C1 + C2.
    subtree(X, I) <- h(t(X, _), _, I).
    subtree(X, I) <- h(t(_, X), _, I).
  )");
  StageAnalysis a = MustAnalyze(p);
  EXPECT_EQ(CliqueOf(a, "h", 3).cls, CliqueClass::kStageStratified);
  // feasible's stage argument comes from I = max(J, K).
  EXPECT_EQ(a.stage_arg[a.graph->Lookup("feasible", 3)], 2);
  EXPECT_EQ(a.stage_arg[a.graph->Lookup("subtree", 2)], 1);
  // The clique has internal negation (through subtree) yet is accepted.
  const PredIndex h = a.graph->Lookup("h", 3);
  EXPECT_TRUE(a.graph->HasInternalNegation(a.graph->scc_of(h)));
}

TEST(StageAnalysis, MatchingAndTspAccepted) {
  ValueStore store;
  Program p = MustParse(&store, R"(
    matching(nil, nil, 0, 0).
    matching(X, Y, C, I) <- next(I), g(X, Y, C), least(C, I),
                            choice(Y, X), choice(X, Y).
  )");
  StageAnalysis a = MustAnalyze(p);
  EXPECT_EQ(CliqueOf(a, "matching", 4).cls, CliqueClass::kStageStratified);

  ValueStore store2;
  Program q = MustParse(&store2, R"(
    tsp_chain(X, Y, C, 1) <- least_arcs(X, Y, C), choice((), (X, Y)).
    tsp_chain(X, Y, C, I) <- next(I), new_g(X, Y, C, J), I = J + 1,
                             least(C, I), choice(Y, X).
    new_g(X, Y, C, J) <- tsp_chain(_, X, _, J), g(X, Y, C).
    least_arcs(X, Y, C) <- g(X, Y, C), least(C).
  )");
  auto a2 = AnalyzeStages(q);
  ASSERT_TRUE(a2.ok()) << a2.status().ToString();
  const PredIndex tsp = a2->graph->Lookup("tsp_chain", 4);
  EXPECT_EQ(a2->cliques[a2->graph->scc_of(tsp)].cls,
            CliqueClass::kStageStratified);
  // least_arcs sits below the stage clique.
  const PredIndex la = a2->graph->Lookup("least_arcs", 3);
  EXPECT_NE(a2->graph->scc_of(la), a2->graph->scc_of(tsp));
}

TEST(StageAnalysis, RelaxedFlatRuleNegation) {
  // A flat rule whose negated goal is not strictly stage-stratified:
  // accepted as RelaxedStage by default, rejected when the option is off
  // (the paper's Kruskal discussion, Section 7).
  ValueStore store;
  const char* text = R"(
    p(nil, 0).
    p(X, I) <- next(I), cand(X, J), J < I, choice((), X).
    cand(X, J) <- p(_, J), q(X), not blocked(X, J).
    blocked(X, J) <- p(X, J).
  )";
  Program prog = MustParse(&store, text);
  StageAnalysis a = MustAnalyze(prog);
  const CliqueStageInfo& cl = CliqueOf(a, "p", 2);
  EXPECT_EQ(cl.cls, CliqueClass::kRelaxedStage) << cl.diagnostic;
  EXPECT_EQ(cl.code, diag::kRelaxedStratification);

  StageAnalysisOptions strict;
  strict.allow_relaxed_flat_rules = false;
  auto a2 = AnalyzeStages(prog, strict);
  ASSERT_TRUE(a2.ok());
  const PredIndex p = a2->graph->Lookup("p", 2);
  EXPECT_EQ(a2->cliques[a2->graph->scc_of(p)].cls, CliqueClass::kRejected);
  EXPECT_EQ(a2->cliques[a2->graph->scc_of(p)].code,
            diag::kNotStageStratified);
}

TEST(StageAnalysis, MixedNextAndFlatRulesRejected) {
  ValueStore store;
  Program p = MustParse(&store, R"(
    p(nil, 0).
    p(X, I) <- next(I), q(X).
    p(X, I) <- p(Y, I), r(Y, X).
  )");
  StageAnalysis a = MustAnalyze(p);
  EXPECT_EQ(CliqueOf(a, "p", 2).cls, CliqueClass::kRejected);
  EXPECT_EQ(CliqueOf(a, "p", 2).code, diag::kMixedRuleKinds);
}

TEST(StageAnalysis, ConflictingStagePositionsReportCode) {
  ValueStore store;
  Program p = MustParse(&store, R"(
    p(nil, 0).
    p(X, I) <- next(I), q(X).
    p(I, X) <- next(I), q(X).
  )");
  auto a = AnalyzeStages(p);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(DiagCodeOfStatus(a.status()), diag::kConflictingStagePos);
}

TEST(StageAnalysis, NonStratifiedCliqueReportsCode) {
  ValueStore store;
  Program p = MustParse(&store, R"(
    p(X) <- q(X), not r(X).
    r(X) <- q(X), not p(X).
  )");
  StageAnalysis a = MustAnalyze(p);
  const CliqueStageInfo& cl = CliqueOf(a, "p", 1);
  EXPECT_EQ(cl.cls, CliqueClass::kRejected);
  EXPECT_EQ(cl.code, diag::kNotStageStratified);
}

TEST(StageAnalysis, HornCliqueUntouched) {
  ValueStore store;
  Program p = MustParse(&store, R"(
    tc(X, Y) <- e(X, Y).
    tc(X, Z) <- tc(X, Y), e(Y, Z).
  )");
  StageAnalysis a = MustAnalyze(p);
  EXPECT_EQ(CliqueOf(a, "tc", 2).cls, CliqueClass::kHorn);
  EXPECT_EQ(a.stage_arg[a.graph->Lookup("tc", 2)], -1);
}

TEST(StageAnalysis, KruskalConnFormulationFullyAccepted) {
  ValueStore store;
  Program p = MustParse(&store, R"(
    kruskal(nil, nil, 0, 0).
    conn(X, X, 0) <- node(X).
    conn(X, Y, I) <- kruskal(A, B, _, I), conn(A, X, J1), J1 < I,
                     conn(B, Y, J2), J2 < I.
    conn(X, Y, I) <- kruskal(A, B, _, I), conn(B, X, J1), J1 < I,
                     conn(A, Y, J2), J2 < I.
    kruskal(X, Y, C, I) <- next(I), g(X, Y, C), least(C, I),
                           not (conn(X, Y, J), J < I).
  )");
  StageAnalysis a = MustAnalyze(p);
  const CliqueStageInfo& cl = CliqueOf(a, "kruskal", 4);
  EXPECT_EQ(cl.cls, CliqueClass::kStageStratified) << cl.diagnostic;
  // kruskal and conn are one clique (mutual recursion through negation).
  EXPECT_EQ(a.graph->scc_of(a.graph->Lookup("kruskal", 4)),
            a.graph->scc_of(a.graph->Lookup("conn", 3)));
}

TEST(StageAnalysis, CliqueOrderRespectsDependencies) {
  ValueStore store;
  Program p = MustParse(&store, R"(
    base(X) <- src(X).
    mid(X) <- base(X).
    top(X) <- mid(X), not base(X).
  )");
  StageAnalysis a = MustAnalyze(p);
  auto pos = [&](const char* name, uint32_t arity) {
    const uint32_t scc = a.graph->scc_of(a.graph->Lookup(name, arity));
    return std::find(a.clique_order.begin(), a.clique_order.end(), scc) -
           a.clique_order.begin();
  };
  EXPECT_LT(pos("base", 1), pos("mid", 1));
  EXPECT_LT(pos("mid", 1), pos("top", 1));
}

}  // namespace
}  // namespace gdlog
