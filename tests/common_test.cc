// Unit tests for the common substrate: Status/Result, hashing, Rng,
// Arena.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/arena.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"

namespace gdlog {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("unexpected token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: unexpected token");
}

TEST(Result, ValueAccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, ErrorPropagation) {
  auto f = []() -> Result<int> { return Status::NotFound("nope"); };
  auto g = [&]() -> Result<int> {
    GDLOG_ASSIGN_OR_RETURN(int v, f());
    return v + 1;
  };
  Result<int> r = g();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Hash, Mix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  const uint64_t a = Mix64(0x1234);
  const uint64_t b = Mix64(0x1235);
  const int flipped = __builtin_popcountll(a ^ b);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(Hash, StringsStable) {
  EXPECT_EQ(HashString("hello"), HashString("hello"));
  EXPECT_NE(HashString("hello"), HashString("hellp"));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, BoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Arena, AllocationsDistinctAndAligned) {
  Arena arena(128);  // small blocks to force growth
  std::unordered_set<void*> ptrs;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(24, 8);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
    EXPECT_TRUE(ptrs.insert(p).second);
  }
  EXPECT_GE(arena.bytes_allocated(), 2400u);
}

TEST(Arena, CopyStringNullTerminatedAndStable) {
  Arena arena;
  std::string s = "transient";
  std::string_view view = arena.CopyString(s);
  s = "clobbered";
  EXPECT_EQ(view, "transient");
  EXPECT_EQ(view.data()[view.size()], '\0');
}

TEST(Arena, LargeAllocationGetsOwnBlock) {
  Arena arena(64);
  void* p = arena.Allocate(10'000);
  EXPECT_NE(p, nullptr);
}

}  // namespace
}  // namespace gdlog
