// Derivation provenance & choice audit (observability PR 6):
//
//   1. Why() must reproduce a proof tree counted by hand on a tiny
//      fixture — the annotation column is asserted row-by-row, not just
//      "some tree came back".
//   2. Provenance is pure metadata: with it on or off, at threads 1 or
//      8, the shipped choice programs produce bit-identical models.
//   3. The choice audit must agree with the procedural baselines: the
//      sum of audited winner costs is exactly the baseline MST /
//      Huffman cost, and the firing count matches the merge count.
//   4. Error paths (before Run, provenance off, unknown tuples) fail
//      cleanly, and the build-info / flight-recorder satellites show up
//      where documented.
//
// Hand-counted fixture (same as explain_analyze_test):
//   e(1,2). e(1,3). e(2,3).   f(2..7).   g(3).
//   p(X,Y) <- e(X,Y), f(Y).
//   q(X)   <- p(X,Y), g(Y).
// q(1) has exactly one derivation: {g(3), p(1,3)}, and p(1,3) has
// exactly one: {e(1,3), f(3)} — so the tree below is forced, whatever
// join order the planner picks (premise order inside a node is
// plan-dependent, so assertions are order-insensitive).
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "baselines/huffman.h"
#include "baselines/kruskal.h"
#include "baselines/prim.h"
#include "common/build_info.h"
#include "greedy/huffman.h"
#include "greedy/kruskal.h"
#include "greedy/prim.h"
#include "obs/json.h"
#include "obs/provenance.h"
#include "storage/tuple.h"
#include "workload/graph_gen.h"
#include "workload/text_gen.h"

namespace gdlog {
namespace {

constexpr char kFixture[] = R"(
  e(1,2). e(1,3). e(2,3).
  f(2). f(3). f(4). f(5). f(6). f(7).
  g(3).
  p(X,Y) <- e(X,Y), f(Y).
  q(X) <- p(X,Y), g(Y).
)";

EngineOptions WithProvenance(uint32_t threads = 1) {
  EngineOptions opts;
  opts.provenance = true;
  opts.eval.threads = threads;
  opts.eval.parallel_min_rows = 2;
  return opts;
}

std::set<std::string> PremiseAtoms(const ProofNode& n) {
  std::set<std::string> atoms;
  for (const ProofNode& p : n.premises) atoms.insert(p.atom);
  return atoms;
}

const ProofNode* FindPremise(const ProofNode& n, const std::string& atom) {
  for (const ProofNode& p : n.premises) {
    if (p.atom == atom) return &p;
  }
  return nullptr;
}

// -- 1. Hand-counted proof tree ------------------------------------------

TEST(Provenance, WhyReproducesHandCountedProofTree) {
  Engine e(WithProvenance());
  ASSERT_TRUE(e.LoadProgram(kFixture).ok());
  ASSERT_TRUE(e.Run().ok());

  auto why = e.Why("q", {Value::Int(1)});
  ASSERT_TRUE(why.ok()) << why.status().ToString();
  EXPECT_EQ(why->atom, "q(1)");
  EXPECT_FALSE(why->truncated);
  EXPECT_NE(why->rule.find("q(X)"), std::string::npos) << why->rule;

  // q(1) <- { g(3), p(1,3) } — the only solution of rule q for X=1.
  EXPECT_EQ(PremiseAtoms(*why),
            (std::set<std::string>{"g(3)", "p(1, 3)"}));

  const ProofNode* g3 = FindPremise(*why, "g(3)");
  ASSERT_NE(g3, nullptr);
  EXPECT_EQ(g3->rule_index, Relation::kEdbRule);
  EXPECT_TRUE(g3->premises.empty());
  EXPECT_TRUE(g3->rule.empty());

  // p(1,3) <- { e(1,3), f(3) }, both asserted facts.
  const ProofNode* p13 = FindPremise(*why, "p(1, 3)");
  ASSERT_NE(p13, nullptr);
  EXPECT_NE(p13->rule.find("p(X, Y)"), std::string::npos) << p13->rule;
  EXPECT_EQ(PremiseAtoms(*p13),
            (std::set<std::string>{"e(1, 3)", "f(3)"}));
  for (const ProofNode& leaf : p13->premises) {
    EXPECT_EQ(leaf.rule_index, Relation::kEdbRule) << leaf.atom;
    EXPECT_TRUE(leaf.premises.empty()) << leaf.atom;
  }
}

TEST(Provenance, DepthBoundMarksTruncation) {
  Engine e(WithProvenance());
  ASSERT_TRUE(e.LoadProgram(kFixture).ok());
  ASSERT_TRUE(e.Run().ok());
  auto why = e.Why("q", {Value::Int(1)}, /*max_depth=*/0);
  ASSERT_TRUE(why.ok());
  EXPECT_TRUE(why->truncated);
  EXPECT_TRUE(why->premises.empty());
  // One level down: q's premises present, p's elided.
  auto one = e.Why("q", {Value::Int(1)}, /*max_depth=*/1);
  ASSERT_TRUE(one.ok());
  EXPECT_FALSE(one->truncated);
  const ProofNode* p13 = FindPremise(*one, "p(1, 3)");
  ASSERT_NE(p13, nullptr);
  EXPECT_TRUE(p13->truncated);
  EXPECT_TRUE(p13->premises.empty());
}

TEST(Provenance, RenderersCoverTextJsonDot) {
  Engine e(WithProvenance());
  ASSERT_TRUE(e.LoadProgram(kFixture).ok());
  ASSERT_TRUE(e.Run().ok());

  auto text = e.WhyText("q(1)");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("q(1)"), std::string::npos);
  EXPECT_NE(text->find("[fact]"), std::string::npos);

  // pred/arity targets resolve to the relation's last derived row.
  auto last = e.WhyText("q/1");
  ASSERT_TRUE(last.ok()) << last.status().ToString();

  auto json = e.WhyJson("q(1)");
  ASSERT_TRUE(json.ok());
  auto doc = ParseJson(*json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* atom = doc->Find("atom");
  ASSERT_NE(atom, nullptr);
  EXPECT_EQ(atom->string, "q(1)");
  ASSERT_NE(doc->Find("premises"), nullptr);
  EXPECT_EQ(doc->Find("premises")->items.size(), 2u);

  auto dot = e.WhyDot("q(1)");
  ASSERT_TRUE(dot.ok());
  EXPECT_NE(dot->find("digraph"), std::string::npos);
  EXPECT_NE(dot->find("->"), std::string::npos);
  EXPECT_NE(dot->find("q(1)"), std::string::npos);
}

TEST(Provenance, ErrorPathsFailCleanly) {
  {
    // Before Run.
    Engine e(WithProvenance());
    ASSERT_TRUE(e.LoadProgram(kFixture).ok());
    EXPECT_FALSE(e.Why("q", {Value::Int(1)}).ok());
    EXPECT_FALSE(e.ChoiceAuditText().ok());
  }
  {
    // Provenance off: the annotation column does not exist.
    Engine e;
    ASSERT_TRUE(e.LoadProgram(kFixture).ok());
    ASSERT_TRUE(e.Run().ok());
    EXPECT_FALSE(e.WhyText("q(1)").ok());
    EXPECT_EQ(e.ChoiceAudit(), nullptr);
    EXPECT_FALSE(e.ChoiceAuditText().ok());
  }
  {
    Engine e(WithProvenance());
    ASSERT_TRUE(e.LoadProgram(kFixture).ok());
    ASSERT_TRUE(e.Run().ok());
    EXPECT_FALSE(e.WhyText("q(99)").ok());        // not derived
    EXPECT_FALSE(e.WhyText("zzz(1)").ok());       // unknown predicate
    EXPECT_FALSE(e.WhyText("zzz/3").ok());        // unknown relation
    EXPECT_FALSE(e.WhyText("not an atom").ok());  // unparseable
  }
}

// -- 2. Provenance is invisible to the model -----------------------------

std::string ReadFileOrDie(const std::string& name) {
  std::ifstream in(std::string(GDLOG_SOURCE_DIR) + "/programs/" + name);
  EXPECT_TRUE(in.good()) << "cannot open " << name;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> DumpModel(const Engine& e) {
  std::vector<std::string> lines;
  for (const auto& ref : e.program()->AllPredicates()) {
    for (const auto& tuple : e.Query(ref.name, ref.arity)) {
      std::string line = ref.name;
      line += TupleToString(e.store(), TupleView(tuple));
      lines.push_back(std::move(line));
    }
  }
  return lines;
}

class ProvenanceDifferential : public ::testing::TestWithParam<const char*> {
};

TEST_P(ProvenanceDifferential, ModelBitIdenticalOnOffAcrossThreads) {
  const std::string text = ReadFileOrDie(GetParam());
  auto run = [&text](bool provenance, uint32_t threads) {
    EngineOptions opts = WithProvenance(threads);
    opts.provenance = provenance;
    opts.eval.provenance = false;  // ctor re-derives from opts.provenance
    Engine e(opts);
    EXPECT_TRUE(e.LoadProgram(text).ok());
    auto st = e.Run();
    EXPECT_TRUE(st.ok()) << st.ToString();
    return DumpModel(e);
  };
  const std::vector<std::string> baseline = run(false, 1);
  ASSERT_FALSE(baseline.empty());
  for (uint32_t threads : {1u, 8u}) {
    EXPECT_EQ(run(false, threads), baseline)
        << GetParam() << " off/threads=" << threads;
    EXPECT_EQ(run(true, threads), baseline)
        << GetParam() << " on/threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, ProvenanceDifferential,
                         ::testing::Values("prim.dl", "kruskal.dl",
                                           "huffman.dl",
                                           "course_assignment.dl"));

// -- 3. Choice audit vs procedural baselines -----------------------------

int64_t AuditCostSum(const ChoiceAuditTrail* audit) {
  int64_t sum = 0;
  for (const ChoiceAuditEntry& e : audit->entries()) sum += e.cost.AsInt();
  return sum;
}

TEST(ChoiceAudit, PrimWinnersMatchBaseline) {
  GraphGenOptions gen;
  gen.seed = 17;
  const Graph g = ConnectedRandomGraph(30, 60, gen);
  auto r = PrimMst(g, 0, WithProvenance());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ChoiceAuditTrail* audit = r->engine->ChoiceAudit();
  ASSERT_NE(audit, nullptr);
  // One audited firing per tree edge; the audited winner costs sum to
  // exactly the procedural MST cost.
  EXPECT_EQ(audit->entries().size(), r->edges.size());
  EXPECT_EQ(AuditCostSum(audit), BaselinePrim(g, 0).total_cost);
  for (const ChoiceAuditEntry& e : audit->entries()) {
    EXPECT_TRUE(e.fired);
    EXPECT_GE(e.stage, 1);
    EXPECT_GE(e.candidate_set, 1u);
    EXPECT_GE(e.pops, 1u);
    EXPECT_EQ(e.witness.rfind("prm(", 0), 0u) << e.witness;
  }
  // Each audited witness is the stage's tree edge, in firing order.
  ASSERT_EQ(audit->entries().size(), r->edges.size());
  for (size_t i = 0; i < r->edges.size(); ++i) {
    EXPECT_EQ(audit->entries()[i].cost.AsInt(), r->edges[i].cost);
  }
}

TEST(ChoiceAudit, KruskalWinnersMatchBaseline) {
  GraphGenOptions gen;
  gen.seed = 23;
  const Graph g = ConnectedRandomGraph(20, 40, gen);
  auto r = KruskalMst(g, WithProvenance());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ChoiceAuditTrail* audit = r->engine->ChoiceAudit();
  ASSERT_NE(audit, nullptr);
  EXPECT_EQ(audit->entries().size(), r->edges.size());
  EXPECT_EQ(AuditCostSum(audit), BaselineKruskal(g).total_cost);
}

TEST(ChoiceAudit, HuffmanFiringsEqualMergeCount) {
  TextGenOptions gen;
  gen.seed = 11;
  const auto freqs = ZipfLetterFrequencies(10, gen);
  auto r = HuffmanTree(freqs, WithProvenance());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ChoiceAuditTrail* audit = r->engine->ChoiceAudit();
  ASSERT_NE(audit, nullptr);
  // k letters -> k-1 merges, one gamma firing each; merged-node costs
  // sum to the weighted path length the baseline computes.
  EXPECT_EQ(audit->entries().size(), freqs.size() - 1);
  EXPECT_EQ(audit->entries().size(), r->merges);
  EXPECT_EQ(AuditCostSum(audit), BaselineHuffman(freqs).total_cost);
}

TEST(ChoiceAudit, RejectionsAndTiesAreVisible) {
  // Triangle with a forced rejection: Kruskal takes costs 1 and 2, then
  // pops the cost-3 edge whose endpoints are already connected — its
  // post plan yields no solution, so the audit never fires for it and
  // the rejection lands in the flight recorder as a contested choice.
  Graph g;
  g.num_nodes = 3;
  g.edges = {{0, 1, 1}, {1, 2, 2}, {0, 2, 3}};
  auto r = KruskalMst(g, WithProvenance());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ChoiceAuditTrail* audit = r->engine->ChoiceAudit();
  ASSERT_NE(audit, nullptr);
  ASSERT_EQ(audit->entries().size(), 2u);
  uint64_t rejected_post = 0;
  for (const ChoiceAuditEntry& e : audit->entries()) {
    rejected_post += e.rejected_post;
  }
  EXPECT_EQ(rejected_post, 0u)  // both winners fire on their first pop
      << "winners should not absorb the cycle edge's rejection";
  const std::string blackbox = r->engine->DumpFlightRecorder();
  EXPECT_NE(blackbox.find("choice-reject"), std::string::npos) << blackbox;

  auto text = r->engine->ChoiceAuditText();
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("chose"), std::string::npos);
  EXPECT_NE(text->find("kruskal("), std::string::npos);
}

// -- 4. Report, metrics, build info --------------------------------------

TEST(ChoiceAudit, RunReportCarriesProvenanceAndChoices) {
  Engine e(WithProvenance());
  ASSERT_TRUE(e.LoadProgram(kFixture).ok());
  ASSERT_TRUE(e.Run().ok());
  auto report = e.RunReport();
  ASSERT_TRUE(report.ok());
  auto doc = ParseJson(*report);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  const JsonValue* prov = doc->Find("provenance");
  ASSERT_NE(prov, nullptr);
  const JsonValue* enabled = prov->Find("enabled");
  ASSERT_NE(enabled, nullptr);
  EXPECT_TRUE(enabled->boolean);
  const JsonValue* annotated = prov->Find("rows_annotated");
  ASSERT_NE(annotated, nullptr);
  // 3 p rows + 2 q rows derived; EDB facts are annotated too.
  EXPECT_GE(annotated->number, 5.0);

  const JsonValue* choices = doc->Find("choices");
  ASSERT_NE(choices, nullptr);
  ASSERT_TRUE(choices->is_object());  // null only when audit is off
  ASSERT_NE(choices->Find("total"), nullptr);
  EXPECT_EQ(choices->Find("total")->number, 0.0);  // no gamma rules here

  const JsonValue* build = doc->Find("build");
  ASSERT_NE(build, nullptr);
  ASSERT_NE(build->Find("version"), nullptr);
  EXPECT_EQ(build->Find("version")->string, GetBuildInfo().version);
}

TEST(ChoiceAudit, ChoiceSeriesReachPrometheus) {
  GraphGenOptions gen;
  gen.seed = 29;
  const Graph g = ConnectedRandomGraph(12, 24, gen);
  auto r = PrimMst(g, 0, WithProvenance());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto metrics = r->engine->MetricsText();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("gdlog_choice_candidate_set"), std::string::npos);
  EXPECT_NE(metrics->find("gdlog_choice_audit_firings_total"),
            std::string::npos);
}

TEST(BuildInfo, GaugeAndReportExposeBuildIdentity) {
  const BuildInfo& info = GetBuildInfo();
  EXPECT_NE(info.version, nullptr);
  EXPECT_STRNE(info.version, "");
  Engine e;
  ASSERT_TRUE(e.LoadProgram("p(X) <- q(X).").ok());
  ASSERT_TRUE(e.AddFact("q", {Value::Int(1)}).ok());
  ASSERT_TRUE(e.Run().ok());
  auto metrics = e.MetricsText();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("gdlog_build_info"), std::string::npos);
  EXPECT_NE(metrics->find(info.version), std::string::npos);
}

}  // namespace
}  // namespace gdlog
