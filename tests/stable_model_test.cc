// Tests for the Gelfond-Lifschitz stable-model checker itself —
// including that it REJECTS sets that are not stable models (the
// positive cases are covered throughout the greedy tests).
#include "eval/stable_model.h"

#include <gtest/gtest.h>

#include "api/engine.h"
#include "parser/parser.h"

namespace gdlog {
namespace {

TEST(StableModel, AcceptsHornLeastModel) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    edge(1, 2). edge(2, 3).
    tc(X, Y) <- edge(X, Y).
    tc(X, Z) <- tc(X, Y), edge(Y, Z).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  auto check = e.VerifyStableModel();
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_TRUE(check->stable);
}

TEST(StableModel, AcceptsStratifiedNegation) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    node(1). node(2). node(3).
    edge(1, 2).
    reach(1).
    reach(Y) <- reach(X), edge(X, Y).
    iso(X) <- node(X), not reach(X).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  auto check = e.VerifyStableModel();
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->stable);
}

TEST(StableModel, RejectsTamperedModel) {
  // Run a Horn program, then check a DIFFERENT catalog with an extra
  // unsupported fact: the reduct cannot re-derive it.
  ValueStore store;
  auto prog = ParseProgram(&store, R"(
    edge(1, 2).
    tc(X, Y) <- edge(X, Y).
  )");
  ASSERT_TRUE(prog.ok());
  Catalog model;
  const PredicateId edge = model.Ensure("edge", 2);
  const PredicateId tc = model.Ensure("tc", 2);
  std::vector<Value> e12{Value::Int(1), Value::Int(2)};
  std::vector<Value> t12{Value::Int(1), Value::Int(2)};
  std::vector<Value> t99{Value::Int(9), Value::Int(9)};  // unsupported
  model.relation(edge).Insert(TupleView(e12));
  model.relation(tc).Insert(TupleView(t12));
  model.relation(tc).Insert(TupleView(t99));
  std::vector<size_t> watermarks{1, 0};  // edge fact is the only seed
  auto check = CheckStableModel(*prog, model, &store, {}, watermarks);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_FALSE(check->stable);
  EXPECT_NE(check->diagnostic.find("tc"), std::string::npos);
}

TEST(StableModel, RejectsIncompleteModel) {
  // A model missing a derivable fact is not a model of the reduct.
  ValueStore store;
  auto prog = ParseProgram(&store, R"(
    edge(1, 2).
    tc(X, Y) <- edge(X, Y).
  )");
  ASSERT_TRUE(prog.ok());
  Catalog model;
  const PredicateId edge = model.Ensure("edge", 2);
  model.Ensure("tc", 2);  // empty: tc(1,2) missing
  std::vector<Value> e12{Value::Int(1), Value::Int(2)};
  model.relation(edge).Insert(TupleView(e12));
  std::vector<size_t> watermarks{1, 0};
  auto check = CheckStableModel(*prog, model, &store, {}, watermarks);
  ASSERT_TRUE(check.ok());
  EXPECT_FALSE(check->stable);
}

TEST(StableModel, RejectsChoiceViolatingFd) {
  // Claim BOTH takes-tuples for course engl were chosen: violates the
  // FD, so diffChoice refutes one chosen tuple and the reduct shrinks.
  ValueStore store;
  auto prog = ParseProgram(&store, R"(
    takes(andy, engl). takes(mark, engl).
    a_st(St, Crs) <- takes(St, Crs), choice(Crs, St).
  )");
  ASSERT_TRUE(prog.ok());
  Catalog model;
  const PredicateId takes = model.Ensure("takes", 2);
  const PredicateId a_st = model.Ensure("a_st", 2);
  const Value andy = store.MakeSymbol("andy");
  const Value mark = store.MakeSymbol("mark");
  const Value engl = store.MakeSymbol("engl");
  for (Value st : {andy, mark}) {
    std::vector<Value> row{st, engl};
    model.relation(takes).Insert(TupleView(row));
    model.relation(a_st).Insert(TupleView(row));
  }
  // chosen$0 carries (Crs, St) for both students — FD Crs -> St broken.
  std::vector<std::vector<Value>> chosen0 = {{engl, andy}, {engl, mark}};
  std::vector<size_t> watermarks{2, 0};
  auto check = CheckStableModel(*prog, model, &store, {chosen0}, watermarks);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_FALSE(check->stable);
}

TEST(StableModel, ChecksLeastSemantics) {
  // A "model" where the extremum picked a non-minimal tuple is rejected.
  ValueStore store;
  auto prog = ParseProgram(&store, R"(
    v(a, 5). v(b, 3).
    m(X, C) <- v(X, C), least(C).
  )");
  ASSERT_TRUE(prog.ok());
  Catalog model;
  const PredicateId v = model.Ensure("v", 2);
  const PredicateId m = model.Ensure("m", 2);
  const Value a = store.MakeSymbol("a");
  const Value b = store.MakeSymbol("b");
  std::vector<Value> va{a, Value::Int(5)};
  std::vector<Value> vb{b, Value::Int(3)};
  model.relation(v).Insert(TupleView(va));
  model.relation(v).Insert(TupleView(vb));
  model.relation(m).Insert(TupleView(va));  // wrong: 5 is not minimal
  std::vector<size_t> watermarks{2, 0};
  auto check = CheckStableModel(*prog, model, &store, {}, watermarks);
  ASSERT_TRUE(check.ok());
  EXPECT_FALSE(check->stable);
}

TEST(StableModel, ReportsFactCounts) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram("p(1). q(X) <- p(X).").ok());
  ASSERT_TRUE(e.Run().ok());
  auto check = e.VerifyStableModel();
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->stable);
  EXPECT_EQ(check->model_facts, check->reduct_facts);
  EXPECT_GE(check->model_facts, 2u);
}

}  // namespace
}  // namespace gdlog
