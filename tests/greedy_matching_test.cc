// E3 correctness: declarative matching (Example 7) against the
// procedural sorted-greedy baseline.
#include "greedy/matching.h"

#include <gtest/gtest.h>

#include <set>

#include "baselines/matching.h"
#include "workload/graph_gen.h"

namespace gdlog {
namespace {

TEST(GreedyMatching, SmallFixed) {
  Graph g;
  g.num_nodes = 4;
  // Arcs 0->2 (5), 0->3 (1), 1->2 (2).
  g.edges = {{0, 2, 5}, {0, 3, 1}, {1, 2, 2}};
  auto result = GreedyMatching(g);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Greedy: (0,3) cost 1, then (1,2) cost 2; (0,2) blocked.
  ASSERT_EQ(result->arcs.size(), 2u);
  EXPECT_EQ(result->total_cost, 3);
  EXPECT_EQ(result->arcs[0].cost, 1);
  EXPECT_EQ(result->arcs[1].cost, 2);
}

TEST(GreedyMatching, MatchesBaselineOnBipartiteGraphs) {
  for (uint64_t seed : {3u, 88u, 512u}) {
    GraphGenOptions opts;
    opts.seed = seed;
    const Graph g = BipartiteGraph(20, 20, 120, opts);
    auto result = GreedyMatching(g);
    ASSERT_TRUE(result.ok());
    const BaselineMatching base = BaselineGreedyMatching(g);
    EXPECT_EQ(result->total_cost, base.total_cost) << "seed " << seed;
    EXPECT_EQ(result->arcs.size(), base.arcs.size());
  }
}

TEST(GreedyMatching, ArcSelectionOrderAscends) {
  GraphGenOptions opts;
  opts.seed = 6;
  const Graph g = BipartiteGraph(15, 15, 90, opts);
  auto result = GreedyMatching(g);
  ASSERT_TRUE(result.ok());
  int64_t prev = -1;
  for (const MatchingArc& a : result->arcs) {
    EXPECT_GT(a.cost, prev);
    prev = a.cost;
  }
}

TEST(GreedyMatching, FunctionalDependenciesHold) {
  GraphGenOptions opts;
  opts.seed = 13;
  const Graph g = BipartiteGraph(25, 25, 200, opts);
  auto result = GreedyMatching(g);
  ASSERT_TRUE(result.ok());
  std::set<int64_t> sources, targets;
  for (const MatchingArc& a : result->arcs) {
    EXPECT_TRUE(sources.insert(a.source).second) << "source reused";
    EXPECT_TRUE(targets.insert(a.target).second) << "target reused";
  }
}

TEST(GreedyMatching, Maximality) {
  // No remaining arc has both endpoints free.
  GraphGenOptions opts;
  opts.seed = 21;
  const Graph g = BipartiteGraph(12, 12, 60, opts);
  auto result = GreedyMatching(g);
  ASSERT_TRUE(result.ok());
  std::set<int64_t> sources, targets;
  for (const MatchingArc& a : result->arcs) {
    sources.insert(a.source);
    targets.insert(a.target);
  }
  for (const GraphEdge& e : g.edges) {
    EXPECT_TRUE(sources.count(e.u) || targets.count(e.v))
        << "arc " << e.u << "->" << e.v << " could extend the matching";
  }
}

TEST(GreedyMatching, StableModelVerified) {
  GraphGenOptions opts;
  opts.seed = 2;
  const Graph g = BipartiteGraph(5, 5, 12, opts);
  auto result = GreedyMatching(g);
  ASSERT_TRUE(result.ok());
  auto check = result->engine->VerifyStableModel();
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_TRUE(check->stable) << check->diagnostic;
}

}  // namespace
}  // namespace gdlog
