// Unit tests for relations, indices, delta windows, and the catalog.
#include <algorithm>

#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/index.h"
#include "storage/relation.h"

namespace gdlog {
namespace {

std::vector<Value> Row2(int64_t a, int64_t b) {
  return {Value::Int(a), Value::Int(b)};
}

TEST(Relation, InsertDeduplicates) {
  Relation rel("r", 2);
  EXPECT_TRUE(rel.Insert(TupleView(Row2(1, 2))).inserted);
  EXPECT_FALSE(rel.Insert(TupleView(Row2(1, 2))).inserted);
  EXPECT_TRUE(rel.Insert(TupleView(Row2(2, 1))).inserted);
  EXPECT_EQ(rel.size(), 2u);
}

TEST(Relation, ContainsAndFind) {
  Relation rel("r", 2);
  rel.Insert(TupleView(Row2(5, 6)));
  EXPECT_TRUE(rel.Contains(TupleView(Row2(5, 6))));
  EXPECT_FALSE(rel.Contains(TupleView(Row2(6, 5))));
  EXPECT_NE(rel.Find(TupleView(Row2(5, 6))), kNoRow);
}

TEST(Relation, ManyRowsSurviveRehash) {
  Relation rel("r", 2);
  for (int i = 0; i < 5000; ++i) rel.Insert(TupleView(Row2(i, i * 2)));
  EXPECT_EQ(rel.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(rel.Contains(TupleView(Row2(i, i * 2)))) << i;
  }
}

TEST(Relation, EpochWindows) {
  Relation rel("r", 1);
  auto row1 = std::vector<Value>{Value::Int(1)};
  auto row2 = std::vector<Value>{Value::Int(2)};
  auto row3 = std::vector<Value>{Value::Int(3)};
  rel.Insert(TupleView(row1));
  rel.Insert(TupleView(row2));
  EXPECT_EQ(rel.AdvanceEpoch(), 2u);  // both become the delta
  EXPECT_EQ(rel.delta_begin(), 0u);
  EXPECT_EQ(rel.delta_end(), 2u);
  rel.Insert(TupleView(row3));
  EXPECT_EQ(rel.new_size(), 1u);
  EXPECT_EQ(rel.AdvanceEpoch(), 1u);  // row3 becomes the delta
  EXPECT_EQ(rel.delta_begin(), 2u);
  EXPECT_EQ(rel.delta_end(), 3u);
  rel.SealEpoch();
  EXPECT_EQ(rel.delta_size(), 0u);
}

TEST(Relation, RowViewMatchesInsertion) {
  Relation rel("r", 3);
  std::vector<Value> row{Value::Int(7), Value::Nil(), Value::Int(9)};
  const auto res = rel.Insert(TupleView(row));
  const TupleView view = rel.Row(res.row);
  EXPECT_TRUE(TupleEquals(view, TupleView(row)));
}

TEST(Index, ProbeFindsAllMatches) {
  Relation rel("r", 2);
  const size_t idx = rel.EnsureIndex({0});
  for (int k = 0; k < 50; ++k) {
    for (int v = 0; v < 4; ++v) rel.Insert(TupleView(Row2(k, v)));
  }
  const Index& index = rel.index(idx);
  std::vector<Value> key{Value::Int(7)};
  auto it = index.Probe(Index::HashKey(TupleView(key)));
  int found = 0;
  for (RowId row = it.Next(); row != kNoRow; row = it.Next()) {
    if (rel.Row(row)[0] == Value::Int(7)) ++found;
  }
  EXPECT_EQ(found, 4);
}

TEST(Index, BackfillOnLateCreation) {
  Relation rel("r", 2);
  for (int k = 0; k < 20; ++k) rel.Insert(TupleView(Row2(k, k)));
  const size_t idx = rel.EnsureIndex({1});
  std::vector<Value> key{Value::Int(13)};
  auto it = rel.index(idx).Probe(Index::HashKey(TupleView(key)));
  int found = 0;
  for (RowId row = it.Next(); row != kNoRow; row = it.Next()) {
    if (rel.Row(row)[1] == Value::Int(13)) ++found;
  }
  EXPECT_EQ(found, 1);
}

TEST(Index, ProbeEnumeratesInRowOrderAcrossBackfillAndRehash) {
  // Regression: chains used to be prepended on Insert (newest-first) but
  // rebuilt oldest-first by Rehash, so a probe's enumeration order
  // flipped once the index crossed its load factor — and rows backfilled
  // by a late EnsureIndex could come back in a different order than the
  // same rows registered incrementally. Probe order must be ascending
  // row order, always.
  Relation incremental("a", 2);
  const size_t ii = incremental.EnsureIndex({0});
  Relation late("b", 2);
  // 120 entries forces at least one rehash (64 buckets, 0.7 load) both
  // during incremental growth and inside the backfill loop.
  for (int k = 0; k < 30; ++k) {
    for (int v = 0; v < 4; ++v) {
      incremental.Insert(TupleView(Row2(k, v)));
      late.Insert(TupleView(Row2(k, v)));
    }
  }
  const size_t li = late.EnsureIndex({0});
  const auto probe_rows = [](const Relation& rel, size_t idx, int k) {
    std::vector<Value> key{Value::Int(k)};
    auto it = rel.index(idx).Probe(Index::HashKey(TupleView(key)));
    std::vector<RowId> rows;
    for (RowId row = it.Next(); row != kNoRow; row = it.Next()) {
      if (rel.Row(row)[0] == Value::Int(k)) rows.push_back(row);
    }
    return rows;
  };
  for (int k = 0; k < 30; ++k) {
    const std::vector<RowId> a = probe_rows(incremental, ii, k);
    const std::vector<RowId> b = probe_rows(late, li, k);
    ASSERT_EQ(a.size(), 4u) << "key " << k;
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()))
        << "key " << k << " incremental probe order not ascending";
    // Same database, same probe order — however the index came to be.
    EXPECT_EQ(a, b) << "key " << k;
  }
}

TEST(Index, BucketCollisionsNeverLeakOtherKeys) {
  // 200 distinct keys over 64 initial buckets guarantee same-bucket
  // collisions, including between entries inserted before and after a
  // second index existed (the backfill path). Every probe must yield
  // exactly its own key's rows — the full-hash filter in MatchIterator
  // has to skip foreign chain entries at the head, in the middle, and at
  // the tail of a shared chain.
  Relation rel("r", 2);
  for (int k = 0; k < 100; ++k) rel.Insert(TupleView(Row2(k, 0)));
  const size_t idx = rel.EnsureIndex({0});
  for (int k = 100; k < 200; ++k) rel.Insert(TupleView(Row2(k, 0)));
  for (int k = 0; k < 200; ++k) {
    std::vector<Value> key{Value::Int(k)};
    auto it = rel.index(idx).Probe(Index::HashKey(TupleView(key)));
    std::vector<RowId> rows;
    for (RowId row = it.Next(); row != kNoRow; row = it.Next()) {
      rows.push_back(row);
    }
    // No 64-bit hash collisions among 200 small ints: the chain filter
    // alone must isolate the key.
    ASSERT_EQ(rows.size(), 1u) << "key " << k;
    EXPECT_EQ(rel.Row(rows[0])[0], Value::Int(k));
  }
}

TEST(Index, EnsureIndexDeduplicates) {
  Relation rel("r", 3);
  EXPECT_EQ(rel.EnsureIndex({0, 2}), rel.EnsureIndex({0, 2}));
  EXPECT_NE(rel.EnsureIndex({0}), rel.EnsureIndex({0, 2}));
  EXPECT_EQ(rel.num_indices(), 2u);
}

TEST(Index, MultiColumnKey) {
  Relation rel("r", 3);
  const size_t idx = rel.EnsureIndex({0, 1});
  for (int a = 0; a < 10; ++a) {
    for (int b = 0; b < 10; ++b) {
      std::vector<Value> row{Value::Int(a), Value::Int(b), Value::Int(a + b)};
      rel.Insert(TupleView(row));
    }
  }
  std::vector<Value> key{Value::Int(3), Value::Int(4)};
  auto it = rel.index(idx).Probe(Index::HashKey(TupleView(key)));
  int found = 0;
  for (RowId row = it.Next(); row != kNoRow; row = it.Next()) {
    const TupleView t = rel.Row(row);
    if (t[0] == Value::Int(3) && t[1] == Value::Int(4)) ++found;
  }
  EXPECT_EQ(found, 1);
}

TEST(Catalog, EnsureAndLookup) {
  Catalog cat;
  const PredicateId p2 = cat.Ensure("p", 2);
  const PredicateId p3 = cat.Ensure("p", 3);
  EXPECT_NE(p2, p3);  // arity distinguishes predicates
  EXPECT_EQ(cat.Ensure("p", 2), p2);
  EXPECT_EQ(cat.Lookup("p", 2), p2);
  EXPECT_EQ(cat.Lookup("q", 1), kNoPredicate);
  EXPECT_EQ(cat.DisplayName(p3), "p/3");
}

}  // namespace
}  // namespace gdlog
