// E6 correctness: the declarative greedy TSP chain against the
// procedural replication of the same heuristic.
#include "greedy/tsp.h"

#include <gtest/gtest.h>

#include <set>

#include "baselines/tsp.h"
#include "workload/graph_gen.h"

namespace gdlog {
namespace {

TEST(GreedyTsp, SmallFixed) {
  // Complete K4 with distinct weights.
  Graph g;
  g.num_nodes = 4;
  g.edges = {{0, 1, 1}, {0, 2, 6}, {0, 3, 5}, {1, 2, 2}, {1, 3, 7}, {2, 3, 3}};
  auto result = GreedyTspChain(g);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Start with cheapest arc (0,1). The chain's start node was never
  // "entered", so the heuristic doubles back: 1->0 (1), then 0->3 (5),
  // 3->2 (3) — the greedy sub-optimal behaviour the paper's Section 5
  // discusses.
  ASSERT_EQ(result->chain.size(), 4u);
  EXPECT_EQ(result->total_cost, 1 + 1 + 5 + 3);
  EXPECT_EQ(result->chain[1].to, 0);
}

TEST(GreedyTsp, MatchesBaselineOnCompleteGraphs) {
  for (uint64_t seed : {19u, 73u, 222u}) {
    GraphGenOptions opts;
    opts.seed = seed;
    const Graph g = CompleteGraph(12, opts);
    auto result = GreedyTspChain(g);
    ASSERT_TRUE(result.ok());
    const BaselineTspChain base = BaselineGreedyTsp(g);
    EXPECT_EQ(result->total_cost, base.total_cost) << "seed " << seed;
    EXPECT_EQ(result->chain.size(), base.arcs.size());
  }
}

TEST(GreedyTsp, ChainIsContiguousWithConsecutiveStages) {
  GraphGenOptions opts;
  opts.seed = 40;
  const Graph g = CompleteGraph(10, opts);
  auto result = GreedyTspChain(g);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < result->chain.size(); ++i) {
    EXPECT_EQ(result->chain[i].stage, static_cast<int64_t>(i + 1));
    if (i > 0) {
      EXPECT_EQ(result->chain[i].from, result->chain[i - 1].to)
          << "chain broken at stage " << i + 1;
    }
  }
}

TEST(GreedyTsp, EachNodeEnteredOnce) {
  GraphGenOptions opts;
  opts.seed = 50;
  const Graph g = CompleteGraph(14, opts);
  auto result = GreedyTspChain(g);
  ASSERT_TRUE(result.ok());
  std::set<int64_t> entered;
  for (const TspArc& a : result->chain) {
    EXPECT_TRUE(entered.insert(a.to).second) << "node " << a.to
                                             << " entered twice";
  }
  // On a complete graph the chain covers all nodes (possibly closing
  // back into the start node, which was never entered).
  EXPECT_GE(entered.size(), static_cast<size_t>(g.num_nodes - 1));
}

TEST(GreedyTsp, StableModelVerified) {
  GraphGenOptions opts;
  opts.seed = 8;
  const Graph g = CompleteGraph(6, opts);
  auto result = GreedyTspChain(g);
  ASSERT_TRUE(result.ok());
  auto check = result->engine->VerifyStableModel();
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_TRUE(check->stable) << check->diagnostic;
}

}  // namespace
}  // namespace gdlog
