// E4 correctness: declarative Kruskal (Example 8, conn-reformulated)
// against procedural union-find Kruskal.
#include "greedy/kruskal.h"

#include <gtest/gtest.h>

#include <set>

#include "baselines/kruskal.h"
#include "baselines/union_find.h"
#include "workload/graph_gen.h"

namespace gdlog {
namespace {

TEST(GreedyKruskal, TinyTriangle) {
  Graph g;
  g.num_nodes = 3;
  g.edges = {{0, 1, 10}, {1, 2, 5}, {0, 2, 20}};
  auto result = KruskalMst(g);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_cost, 15);
  ASSERT_EQ(result->edges.size(), 2u);
  // Kruskal picks edges in ascending cost order.
  EXPECT_EQ(result->edges[0].cost, 5);
  EXPECT_EQ(result->edges[1].cost, 10);
}

TEST(GreedyKruskal, MatchesBaselineOnRandomGraphs) {
  for (uint64_t seed : {11u, 52u, 1000u}) {
    GraphGenOptions opts;
    opts.seed = seed;
    const Graph g = ConnectedRandomGraph(30, 60, opts);
    auto result = KruskalMst(g);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const BaselineMst base = BaselineKruskal(g);
    EXPECT_EQ(result->total_cost, base.total_cost) << "seed " << seed;
    EXPECT_EQ(result->edges.size(), g.num_nodes - 1);
  }
}

TEST(GreedyKruskal, EdgesAscendAndFormForest) {
  GraphGenOptions opts;
  opts.seed = 9;
  const Graph g = ConnectedRandomGraph(25, 75, opts);
  auto result = KruskalMst(g);
  ASSERT_TRUE(result.ok());
  UnionFind uf(g.num_nodes);
  int64_t prev = -1;
  for (const MstEdge& e : result->edges) {  // stage order
    EXPECT_GT(e.cost, prev);  // unique weights: strictly ascending
    prev = e.cost;
    EXPECT_TRUE(uf.Union(static_cast<uint32_t>(e.parent),
                         static_cast<uint32_t>(e.node)))
        << "edge closes a cycle";
  }
  EXPECT_EQ(uf.num_components(), 1u);
}

TEST(GreedyKruskal, DisconnectedGraphGivesForest) {
  // Two components: a triangle and an edge.
  Graph g;
  g.num_nodes = 5;
  g.edges = {{0, 1, 3}, {1, 2, 4}, {0, 2, 9}, {3, 4, 1}};
  auto result = KruskalMst(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->edges.size(), 3u);  // 2 + 1 forest edges
  EXPECT_EQ(result->total_cost, 3 + 4 + 1);
}

TEST(GreedyKruskal, ProgramIsFullyStageStratified) {
  // The conn reformulation must pass the strict Section 4 test — no
  // relaxed cliques.
  Engine e;
  ASSERT_TRUE(e.LoadProgram(kKruskalProgram).ok());
  for (const CliqueStageInfo& cl : e.analysis()->cliques) {
    EXPECT_NE(cl.cls, CliqueClass::kRelaxedStage) << cl.diagnostic;
    EXPECT_NE(cl.cls, CliqueClass::kRejected) << cl.diagnostic;
  }
}

TEST(GreedyKruskal, StableModelVerified) {
  GraphGenOptions opts;
  opts.seed = 4;
  const Graph g = ConnectedRandomGraph(7, 7, opts);
  auto result = KruskalMst(g);
  ASSERT_TRUE(result.ok());
  auto check = result->engine->VerifyStableModel();
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_TRUE(check->stable) << check->diagnostic;
}

TEST(GreedyKruskal, AgreesWithPrimWeight) {
  GraphGenOptions opts;
  opts.seed = 31;
  const Graph g = ConnectedRandomGraph(20, 40, opts);
  auto kruskal = KruskalMst(g);
  ASSERT_TRUE(kruskal.ok());
  const BaselineMst prim_base = BaselineKruskal(g);
  EXPECT_EQ(kruskal->total_cost, prim_base.total_cost);
}

}  // namespace
}  // namespace gdlog
