// End-to-end engine smoke tests: Horn programs, stratified negation,
// and the paper's running examples at small scale.
#include "api/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace gdlog {
namespace {

std::set<std::vector<int64_t>> IntRows(const Engine& e,
                                       std::string_view pred,
                                       uint32_t arity) {
  std::set<std::vector<int64_t>> out;
  for (const auto& row : e.Query(pred, arity)) {
    std::vector<int64_t> ints;
    for (Value v : row) ints.push_back(v.is_int() ? v.AsInt() : -999);
    out.insert(std::move(ints));
  }
  return out;
}

TEST(EngineBasic, FactsAndSimpleRule) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    parent(1, 2).
    parent(2, 3).
    grandparent(X, Z) <- parent(X, Y), parent(Y, Z).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(IntRows(e, "grandparent", 2),
            (std::set<std::vector<int64_t>>{{1, 3}}));
}

TEST(EngineBasic, TransitiveClosure) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    tc(X, Y) <- edge(X, Y).
    tc(X, Z) <- tc(X, Y), edge(Y, Z).
  )").ok());
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(e.AddFact("edge", {Value::Int(i), Value::Int(i + 1)}).ok());
  }
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.Query("tc", 2).size(), 45u);  // 10 choose 2
}

TEST(EngineBasic, StratifiedNegation) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    node(1). node(2). node(3).
    edge(1, 2).
    reach(1).
    reach(Y) <- reach(X), edge(X, Y).
    unreach(X) <- node(X), not reach(X).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(IntRows(e, "unreach", 1),
            (std::set<std::vector<int64_t>>{{3}}));
}

TEST(EngineBasic, ArithmeticAndComparison) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    v(1). v(2). v(3).
    doubled(Y) <- v(X), Y = X * 2.
    big(X) <- doubled(X), X > 3.
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(IntRows(e, "doubled", 1),
            (std::set<std::vector<int64_t>>{{2}, {4}, {6}}));
  EXPECT_EQ(IntRows(e, "big", 1), (std::set<std::vector<int64_t>>{{4}, {6}}));
}

TEST(EngineBasic, ChoiceEnforcesFunctionalDependency) {
  // Example 1: one student per course and one course per student.
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    takes(andy, engl, 4).
    takes(mark, engl, 2).
    takes(ann, math, 3).
    takes(mark, math, 2).
    a_st(St, Crs, G) <- takes(St, Crs, G), choice(Crs, St), choice(St, Crs).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  const auto rows = e.Query("a_st", 3);
  ASSERT_EQ(rows.size(), 2u);  // two courses, bi-injective assignment
  std::set<Value> students, courses;
  for (const auto& row : rows) {
    students.insert(row[0]);
    courses.insert(row[1]);
  }
  EXPECT_EQ(students.size(), 2u);
  EXPECT_EQ(courses.size(), 2u);
}

TEST(EngineBasic, LeastNonRecursive) {
  // bttm_st: per-course minimum grade above 1 (Section 2).
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    takes(andy, engl, 4).
    takes(mark, engl, 2).
    takes(ann, math, 3).
    takes(mark, math, 2).
    bttm_st(St, Crs, G) <- takes(St, Crs, G), G > 1, least(G, Crs).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  const auto rows = e.Query("bttm_st", 3);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_EQ(row[2].AsInt(), 2);  // mark has the bottom grade in both
  }
}

TEST(EngineBasic, SortProgramEndToEnd) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    sp(nil, 0, 0).
    sp(X, C, I) <- next(I), p(X, C), least(C, I).
    p(10, 50). p(11, 20). p(12, 90). p(13, 5).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  const auto rows = e.Query("sp", 3);
  ASSERT_EQ(rows.size(), 5u);  // seed + 4 tuples
  // Stage order must equal cost order.
  std::vector<std::pair<int64_t, int64_t>> got;  // (stage, cost)
  for (const auto& row : rows) {
    if (row[0].is_nil()) continue;
    got.emplace_back(row[2].AsInt(), row[1].AsInt());
  }
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].second, 5);
  EXPECT_EQ(got[1].second, 20);
  EXPECT_EQ(got[2].second, 50);
  EXPECT_EQ(got[3].second, 90);
  EXPECT_EQ(got[0].first, 1);  // stages are consecutive from 1
  EXPECT_EQ(got[3].first, 4);
}

TEST(EngineBasic, RunIsSingleShot) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram("p(1).").ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_FALSE(e.Run().ok());
  EXPECT_FALSE(e.AddFact("p", {Value::Int(2)}).ok());
}

TEST(EngineBasic, RejectsUnstratifiedNegation) {
  Engine e;
  const Status st = e.LoadProgram(R"(
    p(X) <- q(X), not r(X).
    r(X) <- q(X), not p(X).
    q(1).
  )");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kAnalysisError);
  EXPECT_EQ(DiagCodeOfStatus(st), diag::kNotStageStratified);
}

}  // namespace
}  // namespace gdlog
