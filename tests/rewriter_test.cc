// Unit tests for the semantic rewritings of Sections 2-3: next
// expansion, choice -> chosen/diffChoice, extrema -> negation, and
// NotExists normalization.
#include "analysis/rewriter.h"

#include <gtest/gtest.h>

#include "analysis/diagnostics.h"
#include "ast/printer.h"
#include "parser/parser.h"

namespace gdlog {
namespace {

Program MustParse(ValueStore* store, const char* text) {
  auto prog = ParseProgram(store, text);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  return std::move(prog).value();
}

TEST(ExpandNext, SortExample) {
  ValueStore store;
  Program p = MustParse(&store, R"(
    sp(nil, 0, 0).
    sp(X, C, I) <- next(I), p(X, C), least(C, I).
  )");
  auto expanded = ExpandNext(p);
  ASSERT_TRUE(expanded.ok());
  const Rule& r = expanded->rules[1];
  const std::string text = RuleToString(store, r);
  // The macro expansion of Section 3: sp(_, _, I1), I = I1 + 1,
  // choice(I, W), choice(W, I).
  EXPECT_NE(text.find("sp("), std::string::npos);
  EXPECT_NE(text.find("+ 1"), std::string::npos);
  EXPECT_NE(text.find("choice(I"), std::string::npos);
  // W = (X, C) is the head minus the stage argument.
  EXPECT_NE(text.find(", I)"), std::string::npos);
  // No next goal remains.
  for (const Literal& l : r.body) {
    EXPECT_NE(l.kind, LiteralKind::kNext);
  }
}

TEST(ExpandNext, RejectsStageVarNotInHead) {
  ValueStore store;
  Program p = MustParse(&store, "q(X) <- next(I), p(X).");
  auto expanded = ExpandNext(p);
  EXPECT_FALSE(expanded.ok());
  EXPECT_EQ(DiagCodeOfStatus(expanded.status()), diag::kBadStageVar);
}

TEST(ExpandNext, RejectsDuplicateStagePosition) {
  ValueStore store;
  Program p = MustParse(&store, "q(I, I) <- next(I), p(I).");
  auto expanded = ExpandNext(p);
  EXPECT_FALSE(expanded.ok());
  EXPECT_EQ(DiagCodeOfStatus(expanded.status()), diag::kBadStageVar);
}

TEST(ExpandNext, RejectsMultipleNextGoals) {
  ValueStore store;
  Program p = MustParse(&store, "q(I, J) <- next(I), next(J), p(I, J).");
  auto expanded = ExpandNext(p);
  EXPECT_FALSE(expanded.ok());
  EXPECT_EQ(DiagCodeOfStatus(expanded.status()), diag::kMultipleNext);
}

TEST(RewriteChoice, Example1Structure) {
  // The paper's Example 2 is the rewriting of Example 1.
  ValueStore store;
  Program p = MustParse(&store, R"(
    a_st(St, Crs, G) <- takes(St, Crs, G), choice(Crs, St), choice(St, Crs).
  )");
  ChoiceRewriteInfo info;
  Program q = RewriteChoice(p, &info);
  // 1 original (rewritten) + 1 chosen + 2 diffChoice rules.
  ASSERT_EQ(q.rules.size(), 4u);
  EXPECT_EQ(q.rules[0].head.predicate, "a_st");
  EXPECT_EQ(q.rules[1].head.predicate, "chosen$0");
  EXPECT_EQ(q.rules[2].head.predicate, "diffChoice$0");
  EXPECT_EQ(q.rules[3].head.predicate, "diffChoice$0");
  // The chosen rule ends with a negated diffChoice goal.
  const Literal& last = q.rules[1].body.back();
  EXPECT_TRUE(last.is_negated_atom());
  EXPECT_EQ(last.predicate, "diffChoice$0");
  // Info records both FDs over (Crs, St).
  ASSERT_EQ(info.entries.size(), 1u);
  EXPECT_EQ(info.entries[0].arity, 2u);
  ASSERT_EQ(info.entries[0].goals.size(), 2u);
}

TEST(RewriteChoice, DistinctIndicesPerRule) {
  ValueStore store;
  Program p = MustParse(&store, R"(
    a(X) <- p(X), choice((), X).
    b(X) <- q(X), choice((), X).
  )");
  ChoiceRewriteInfo info;
  Program q = RewriteChoice(p, &info);
  ASSERT_EQ(info.entries.size(), 2u);
  EXPECT_EQ(info.entries[0].chosen_name, "chosen$0");
  EXPECT_EQ(info.entries[1].chosen_name, "chosen$1");
}

TEST(RewriteExtrema, LeastBecomesNegatedCopy) {
  // Section 2's bttm_st example.
  ValueStore store;
  Program p = MustParse(&store, R"(
    bttm_st(St, Crs, G) <- takes(St, Crs, G), G > 1, least(G, Crs).
  )");
  auto q = RewriteExtrema(p);
  ASSERT_TRUE(q.ok());
  const Rule& r = q->rules[0];
  // least goal gone; a NotExists appended.
  ASSERT_EQ(r.body.back().kind, LiteralKind::kNotExists);
  const std::vector<Literal>& copy = r.body.back().body;
  // Copy: takes(St', Crs, G'), G' > 1, G' < G — Crs shared (the group).
  ASSERT_EQ(copy.size(), 3u);
  EXPECT_EQ(copy[0].predicate, "takes");
  EXPECT_EQ(copy[0].args[1].name, "Crs");      // shared group var
  EXPECT_NE(copy[0].args[0].name, "St");       // renamed
  EXPECT_EQ(copy.back().op, ComparisonOp::kLt);  // G' < G
}

TEST(RewriteExtrema, MostUsesGreaterThan) {
  ValueStore store;
  Program p = MustParse(&store, "m(X, C) <- q(X, C), most(C, ()).");
  auto q = RewriteExtrema(p);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->rules[0].body.back().body.back().op, ComparisonOp::kGt);
}

TEST(RewriteExtrema, RejectsMultipleExtrema) {
  ValueStore store;
  Program p = MustParse(&store, "m(X, C, D) <- q(X, C, D), least(C), most(D).");
  auto q = RewriteExtrema(p);
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(DiagCodeOfStatus(q.status()), diag::kMultipleExtrema);
}

TEST(RewriteExtrema, RejectsNonVariableCost) {
  ValueStore store;
  Program p = MustParse(&store, "m(X) <- q(X, C), least(C + 1).");
  auto q = RewriteExtrema(p);
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(DiagCodeOfStatus(q.status()), diag::kNonVariableCost);
}

TEST(RewriteExtrema, RejectsCostInGrouping) {
  ValueStore store;
  Program p = MustParse(&store, "m(X, C) <- q(X, C), least(C, (X, C)).");
  auto q = RewriteExtrema(p);
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(DiagCodeOfStatus(q.status()), diag::kCostInGroup);
}

TEST(NormalizeNotExists, AuxPredicateIntroduced) {
  ValueStore store;
  Program p = MustParse(&store, R"(
    p(X, I) <- q(X, I), not (r(X, L), L < I).
  )");
  Program q = NormalizeNotExists(p);
  ASSERT_EQ(q.rules.size(), 2u);
  // aux rule first (innermost-first emission), then the host rule.
  EXPECT_EQ(q.rules[0].head.predicate, "aux$0");
  // aux carries the shared variables X and I.
  EXPECT_EQ(q.rules[0].head.args.size(), 2u);
  const Literal& neg = q.rules[1].body.back();
  EXPECT_TRUE(neg.is_negated_atom());
  EXPECT_EQ(neg.predicate, "aux$0");
}

TEST(FullSemanticExpansion, PrimIsNormal) {
  ValueStore store;
  Program p = MustParse(&store, R"(
    prm(nil, a, 0, 0).
    prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I,
                       least(C, I), choice(Y, X).
    new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
  )");
  auto full = FullSemanticExpansion(p);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  // Normal program: no meta goals, no NotExists anywhere.
  for (const Rule& r : full->rules) {
    for (const Literal& l : r.body) {
      EXPECT_NE(l.kind, LiteralKind::kNext);
      EXPECT_NE(l.kind, LiteralKind::kChoice);
      EXPECT_NE(l.kind, LiteralKind::kLeast);
      EXPECT_NE(l.kind, LiteralKind::kMost);
      EXPECT_NE(l.kind, LiteralKind::kNotExists);
    }
  }
  // chosen$/diffChoice$/aux$ predicates all present.
  bool has_chosen = false, has_diff = false, has_aux = false;
  for (const Rule& r : full->rules) {
    if (r.head.predicate.rfind("chosen$", 0) == 0) has_chosen = true;
    if (r.head.predicate.rfind("diffChoice$", 0) == 0) has_diff = true;
    if (r.head.predicate.rfind("aux$", 0) == 0) has_aux = true;
  }
  EXPECT_TRUE(has_chosen);
  EXPECT_TRUE(has_diff);
  EXPECT_TRUE(has_aux);
}

TEST(VariableRenamerTest, SharesAndRenames) {
  VariableRenamer renamer("R$");
  renamer.Share("G");
  const TermNode t = TermNode::Compound(
      "f", {TermNode::Var("G"), TermNode::Var("X")});
  const TermNode out = renamer.Rename(t);
  EXPECT_EQ(out.args[0].name, "G");
  EXPECT_EQ(out.args[1].name, "R$X");
  // Consistent across occurrences.
  EXPECT_EQ(renamer.Rename(TermNode::Var("X")).name, "R$X");
}

}  // namespace
}  // namespace gdlog
