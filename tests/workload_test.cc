// Unit tests for the workload generators: determinism, structural
// invariants, uniqueness guarantees.
#include <gtest/gtest.h>

#include <set>

#include "baselines/union_find.h"
#include "workload/graph_gen.h"
#include "workload/interval_gen.h"
#include "workload/relation_gen.h"
#include "workload/text_gen.h"

namespace gdlog {
namespace {

TEST(GraphGen, DeterministicForSeed) {
  GraphGenOptions opts;
  opts.seed = 5;
  const Graph a = ConnectedRandomGraph(20, 30, opts);
  const Graph b = ConnectedRandomGraph(20, 30, opts);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].u, b.edges[i].u);
    EXPECT_EQ(a.edges[i].v, b.edges[i].v);
    EXPECT_EQ(a.edges[i].w, b.edges[i].w);
  }
}

TEST(GraphGen, ConnectedGraphIsConnected) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    GraphGenOptions opts;
    opts.seed = seed;
    const Graph g = ConnectedRandomGraph(50, 20, opts);
    UnionFind uf(g.num_nodes);
    for (const GraphEdge& e : g.edges) uf.Union(e.u, e.v);
    EXPECT_EQ(uf.num_components(), 1u) << "seed " << seed;
  }
}

TEST(GraphGen, NoParallelEdgesOrSelfLoops) {
  GraphGenOptions opts;
  opts.seed = 8;
  const Graph g = ConnectedRandomGraph(30, 200, opts);
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (const GraphEdge& e : g.edges) {
    EXPECT_NE(e.u, e.v);
    const auto key = std::minmax(e.u, e.v);
    EXPECT_TRUE(seen.insert(key).second)
        << "parallel edge " << e.u << "-" << e.v;
  }
}

TEST(GraphGen, UniqueWeights) {
  GraphGenOptions opts;
  opts.seed = 3;
  const Graph g = CompleteGraph(20, opts);
  std::set<int64_t> weights;
  for (const GraphEdge& e : g.edges) {
    EXPECT_TRUE(weights.insert(e.w).second);
    EXPECT_GT(e.w, 0);
  }
  EXPECT_EQ(g.edges.size(), 190u);  // 20 choose 2
}

TEST(GraphGen, BipartitePartitionsRespected) {
  GraphGenOptions opts;
  opts.seed = 14;
  const Graph g = BipartiteGraph(10, 15, 60, opts);
  EXPECT_EQ(g.num_nodes, 25u);
  EXPECT_EQ(g.edges.size(), 60u);
  std::set<std::pair<uint32_t, uint32_t>> arcs;
  for (const GraphEdge& e : g.edges) {
    EXPECT_LT(e.u, 10u);
    EXPECT_GE(e.v, 10u);
    EXPECT_TRUE(arcs.insert({e.u, e.v}).second);
  }
}

TEST(GraphGen, GridHasExpectedShape) {
  const Graph g = GridGraph(4, 5, {});
  EXPECT_EQ(g.num_nodes, 20u);
  EXPECT_EQ(g.edges.size(), 4u * 4 + 3u * 5);  // rows*(cols-1)+cols*(rows-1)
  for (const GraphEdge& e : g.edges) {
    const uint32_t d = e.v - e.u;
    EXPECT_TRUE(d == 1 || d == 5) << e.u << "-" << e.v;
  }
}

TEST(RelationGen, UniqueCostsAndIds) {
  const auto rel = RandomCostedRelation(500, {});
  std::set<int64_t> ids, costs;
  for (const auto& [id, cost] : rel) {
    EXPECT_TRUE(ids.insert(id).second);
    EXPECT_TRUE(costs.insert(cost).second);
  }
  EXPECT_EQ(rel.size(), 500u);
}

TEST(TextGen, ZipfIsSkewedAndUnique) {
  const auto freqs = ZipfLetterFrequencies(12, {});
  EXPECT_EQ(freqs.size(), 12u);
  std::set<int64_t> values;
  for (const auto& [name, f] : freqs) {
    EXPECT_TRUE(values.insert(f).second);
    EXPECT_GT(f, 0);
  }
  // Head symbol strictly dominates the tail symbol.
  EXPECT_GT(freqs.front().second, 4 * freqs.back().second);
}

TEST(TextGen, CountsLetters) {
  const auto freqs = CountLetterFrequencies("abraca");
  std::map<std::string, int64_t> m(freqs.begin(), freqs.end());
  EXPECT_EQ(m["a"], 3);
  EXPECT_EQ(m["b"], 1);
  EXPECT_EQ(m["r"], 1);
  EXPECT_EQ(m["c"], 1);
}

TEST(IntervalGen, ValidUniqueIntervals) {
  IntervalGenOptions opts;
  opts.seed = 4;
  const auto jobs = RandomIntervals(300, opts);
  EXPECT_EQ(jobs.size(), 300u);
  std::set<int64_t> finishes;
  for (const auto& [s, f] : jobs) {
    EXPECT_LT(s, f);
    EXPECT_TRUE(finishes.insert(f).second);
  }
}

}  // namespace
}  // namespace gdlog
