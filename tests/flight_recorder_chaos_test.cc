// Flight-recorder chaos sweep: every bounded-stop path (GD200 deadline,
// GD201 tuple limit, GD202 stage limit, GD203 iteration limit, GD204
// memory limit, GD205 cancel, GD206 OOM, GD207 injected fault) must
// leave a dumpable black box holding the guard trip and the termination
// event — and dumping must never crash, including concurrently with the
// signal-path cancel that SIGINT takes in the shell.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "api/engine.h"
#include "common/guardrails.h"

namespace gdlog {
namespace {

constexpr const char* kRunaway = R"(
  c(0).
  c(M) <- c(N), M = N + 1, N < 2000000000.
)";

// One stage per p fact (declarative sort) — the only fixture that can
// trip the stage limit.
constexpr const char* kStaged = R"(
  sp(nil, 0, 0).
  sp(X, C, I) <- next(I), p(X, C), least(C, I).
)";

/// Asserts the post-stop black box invariant: a dump that renders, the
/// trip (or OOM) marker, and a final termination event carrying the
/// reason the outcome reports.
void ExpectBlackBox(const Engine& engine, TerminationReason reason) {
  ASSERT_EQ(engine.outcome().reason, reason);
  const FlightRecorder* rec = engine.flight_recorder();
  ASSERT_NE(rec, nullptr);
  const auto events = rec->Snapshot();
  ASSERT_FALSE(events.empty());
  bool saw_stop_marker = false;
  const FlightRecorder::Event* termination = nullptr;
  for (const auto& ev : events) {
    if (ev.kind == FlightEventKind::kGuardTrip ||
        ev.kind == FlightEventKind::kOom ||
        ev.kind == FlightEventKind::kCancelRequested) {
      saw_stop_marker = true;
    }
    if (ev.kind == FlightEventKind::kTermination) termination = &ev;
  }
  EXPECT_TRUE(saw_stop_marker);
  ASSERT_NE(termination, nullptr);
  EXPECT_EQ(termination->a0, static_cast<int64_t>(reason));
  EXPECT_EQ(termination->a1, 0);  // a bounded stop is a non-OK status
  const std::string dump = engine.DumpFlightRecorder();
  EXPECT_NE(dump.find("termination"), std::string::npos) << dump;
}

std::unique_ptr<Engine> StoppedRunaway(RunLimits limits,
                                       std::string faults = "") {
  EngineOptions options;
  options.limits = limits;
  options.faults = std::move(faults);
  // Keep the auto-dump quiet in test logs; DumpFlightRecorder still works.
  options.obs.recorder_dump_on_stop = false;
  auto engine = std::make_unique<Engine>(options);
  EXPECT_TRUE(engine->LoadProgram(kRunaway).ok());
  EXPECT_FALSE(engine->Run().ok());
  return engine;
}

TEST(FlightRecorderChaos, DeadlineStopLeavesBlackBox) {  // GD200
  RunLimits limits;
  limits.deadline_ms = 50;
  ExpectBlackBox(*StoppedRunaway(limits), TerminationReason::kDeadline);
}

TEST(FlightRecorderChaos, TupleLimitStopLeavesBlackBox) {  // GD201
  RunLimits limits;
  limits.max_tuples = 500;
  ExpectBlackBox(*StoppedRunaway(limits), TerminationReason::kTupleLimit);
}

TEST(FlightRecorderChaos, StageLimitStopLeavesBlackBox) {  // GD202
  RunLimits limits;
  limits.max_stages = 3;
  EngineOptions options;
  options.limits = limits;
  options.obs.recorder_dump_on_stop = false;
  Engine engine(options);
  ASSERT_TRUE(engine.LoadProgram(kStaged).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.AddFact("p", {engine.Sym("e" + std::to_string(i)),
                                     engine.Int(i)})
                    .ok());
  }
  ASSERT_FALSE(engine.Run().ok());
  ExpectBlackBox(engine, TerminationReason::kStageLimit);
}

TEST(FlightRecorderChaos, IterationLimitStopLeavesBlackBox) {  // GD203
  RunLimits limits;
  limits.max_iterations = 10;
  ExpectBlackBox(*StoppedRunaway(limits),
                 TerminationReason::kIterationLimit);
}

TEST(FlightRecorderChaos, MemoryLimitStopLeavesBlackBox) {  // GD204
  RunLimits limits;
  limits.max_memory_bytes = 1 << 20;
  ExpectBlackBox(*StoppedRunaway(limits), TerminationReason::kMemoryLimit);
}

TEST(FlightRecorderChaos, SignalPathCancelLeavesBlackBox) {  // GD205
  // RequestCancel is exactly what the shell's SIGINT handler calls; the
  // recorder event it emits must survive to the post-stop dump.
  EngineOptions options;
  options.obs.recorder_dump_on_stop = false;
  Engine engine(options);
  ASSERT_TRUE(engine.LoadProgram(kRunaway).ok());
  std::thread canceller([&engine] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    engine.RequestCancel();
  });
  ASSERT_FALSE(engine.Run().ok());
  canceller.join();
  ExpectBlackBox(engine, TerminationReason::kCancelled);
  bool saw_cancel_event = false;
  for (const auto& ev : engine.flight_recorder()->Snapshot()) {
    if (ev.kind == FlightEventKind::kCancelRequested) {
      saw_cancel_event = true;
    }
  }
  EXPECT_TRUE(saw_cancel_event);
}

TEST(FlightRecorderChaos, GracefulOomLeavesBlackBox) {  // GD206
  RunLimits backstop;
  backstop.deadline_ms = 180000;  // hang backstop only (TSan headroom)
  ExpectBlackBox(*StoppedRunaway(backstop, "alloc@40"),
                 TerminationReason::kOom);
}

TEST(FlightRecorderChaos, InjectedFaultStopLeavesBlackBox) {  // GD207
  RunLimits backstop;
  backstop.deadline_ms = 180000;
  ExpectBlackBox(*StoppedRunaway(backstop, "eval.saturate"),
                 TerminationReason::kFault);
}

TEST(FlightRecorderChaos, DumpingWhileCancellingNeverCrashes) {
  // The dump path must be callable at any moment — here hammered from a
  // second thread while the run is being cancelled mid-flight, the worst
  // interleaving the SIGINT handler can produce.
  EngineOptions options;
  options.obs.recorder_dump_on_stop = false;
  options.obs.recorder_capacity = 32;  // force constant lapping
  Engine engine(options);
  ASSERT_TRUE(engine.LoadProgram(kRunaway).ok());
  std::atomic<bool> stop{false};
  std::thread dumper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string dump = engine.DumpFlightRecorder();
      ASSERT_FALSE(dump.empty());
    }
  });
  std::thread canceller([&engine] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    engine.RequestCancel();
  });
  ASSERT_FALSE(engine.Run().ok());
  canceller.join();
  stop.store(true, std::memory_order_relaxed);
  dumper.join();
  ExpectBlackBox(engine, TerminationReason::kCancelled);
}

TEST(FlightRecorderChaos, CompletedRunRecordsOkTermination) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("p(X) <- q(X). q(1).").ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto events = engine.flight_recorder()->Snapshot();
  ASSERT_FALSE(events.empty());
  const auto& last = events.back();
  EXPECT_EQ(last.kind, FlightEventKind::kTermination);
  EXPECT_EQ(last.a0,
            static_cast<int64_t>(TerminationReason::kCompleted));
  EXPECT_EQ(last.a1, 1);
}

}  // namespace
}  // namespace gdlog
