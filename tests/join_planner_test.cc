// Cost-based join planning: estimate units plus the compiler
// integration — boundness analysis, selectivity ordering, automatic
// index creation, and the degenerate shapes (single-goal bodies,
// all-unbound goals, cross products) the greedy picker must not break.
#include "eval/join_planner.h"

#include <gtest/gtest.h>

#include "analysis/stage.h"
#include "eval/rule_compiler.h"
#include "parser/parser.h"
#include "storage/catalog.h"
#include "value/value.h"

namespace gdlog {
namespace {

// -- Estimate units -----------------------------------------------------

TEST(JoinPlannerEstimates, ScanRelationCountsRowsAndDistincts) {
  Relation r("g", 2);
  for (int64_t x : {1, 1, 2, 3}) {
    Value row[2] = {Value::Int(x), Value::Int(7)};
    r.Insert(TupleView(row, 2));
  }
  // Set semantics dedup the repeated (1,7): 3 rows remain.
  const RelationEstimate est = JoinPlanner::ScanRelation(r);
  EXPECT_TRUE(est.from_data);
  EXPECT_DOUBLE_EQ(est.rows, 3.0);
  ASSERT_EQ(est.distinct.size(), 2u);
  EXPECT_DOUBLE_EQ(est.distinct[0], 3.0);  // 1, 2, 3
  EXPECT_DOUBLE_EQ(est.distinct[1], 1.0);  // always 7
}

TEST(JoinPlannerEstimates, ScanRowsAppliesIndependenceModel) {
  RelationEstimate est;
  est.rows = 100;
  est.distinct = {10, 4};
  EXPECT_DOUBLE_EQ(JoinPlanner::ScanRows(est, {}), 100.0);
  EXPECT_DOUBLE_EQ(JoinPlanner::ScanRows(est, {0}), 10.0);
  EXPECT_DOUBLE_EQ(JoinPlanner::ScanRows(est, {1}), 25.0);
  // Fully bound: 100 / 40 but floored at one matching row.
  EXPECT_DOUBLE_EQ(JoinPlanner::ScanRows(est, {0, 1}), 2.5);
  est.rows = 8;
  EXPECT_DOUBLE_EQ(JoinPlanner::ScanRows(est, {0, 1}), 1.0);
}

TEST(JoinPlannerEstimates, EmptyRelationGetsNeutralDefault) {
  Catalog catalog;
  const PredicateId p = catalog.Ensure("idb", 3);
  JoinPlanner planner(&catalog);
  const RelationEstimate& est = planner.Estimate(p);
  EXPECT_FALSE(est.from_data);
  EXPECT_DOUBLE_EQ(est.rows, JoinPlanner::kDefaultRows);
  ASSERT_EQ(est.distinct.size(), 3u);
  EXPECT_DOUBLE_EQ(est.distinct[0], JoinPlanner::kDefaultDistinct);
}

TEST(JoinPlannerEstimates, EstimatesAreCachedPerPredicate) {
  Catalog catalog;
  const PredicateId p = catalog.Ensure("e", 1);
  JoinPlanner planner(&catalog);
  EXPECT_DOUBLE_EQ(planner.EstimateScanRows(p, {}), JoinPlanner::kDefaultRows);
  // Rows added after the first estimate do not change the cached stats —
  // planning stays deterministic over one compile.
  Value row[1] = {Value::Int(1)};
  catalog.relation(p).Insert(TupleView(row, 1));
  EXPECT_DOUBLE_EQ(planner.EstimateScanRows(p, {}), JoinPlanner::kDefaultRows);
}

// -- Compiler integration -----------------------------------------------

struct Compiled {
  ValueStore store;
  Catalog catalog;
  Program program;
  StageAnalysis analysis;
  std::vector<CompiledRule> rules;
};

/// Parses and compiles `text` with the planner attached, after seeding
/// EDB relations via `facts` (predicate -> rows) so the planner sees
/// real cardinalities like Engine::Run does.
std::unique_ptr<Compiled> CompileWithPlanner(
    const char* text,
    const std::vector<std::pair<std::string, std::vector<std::vector<int64_t>>>>&
        facts = {},
    bool use_planner = true) {
  auto c = std::make_unique<Compiled>();
  auto prog = ParseProgram(&c->store, text);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  c->program = std::move(prog).value();
  auto analysis = AnalyzeStages(c->program);
  EXPECT_TRUE(analysis.ok()) << analysis.status().ToString();
  c->analysis = std::move(analysis).value();
  for (const auto& [pred, rows] : facts) {
    for (const auto& row : rows) {
      const PredicateId id =
          c->catalog.Ensure(pred, static_cast<uint32_t>(row.size()));
      std::vector<Value> vals;
      for (int64_t v : row) vals.push_back(Value::Int(v));
      c->catalog.relation(id).Insert(
          TupleView(vals.data(), static_cast<uint32_t>(vals.size())));
    }
  }
  JoinPlanner planner(&c->catalog);
  CompileProgramOptions opts;
  if (use_planner) opts.planner = &planner;
  auto rules = CompileProgram(c->program, c->analysis, &c->catalog, &c->store,
                              opts);
  EXPECT_TRUE(rules.ok()) << rules.status().ToString();
  c->rules = std::move(rules).value();
  return c;
}

/// The compiled rule whose head is `head` ("pred/arity"). Fact rules are
/// loaded directly, so compiled indices do not track program positions.
const CompiledRule& RuleFor(const Compiled& c, const std::string& head) {
  for (const CompiledRule& r : c.rules) {
    if (c.catalog.DisplayName(r.head_pred) == head) return r;
  }
  ADD_FAILURE() << "no compiled rule with head " << head;
  static CompiledRule none;
  return none;
}

/// Scan goals of the rule's generator plan, as predicate display names
/// in plan order.
std::vector<std::string> ScanOrder(const Compiled& c, size_t rule) {
  std::vector<std::string> order;
  for (const CompiledLiteral& lit : c.rules[rule].generator) {
    if (lit.kind == CompiledLiteral::Kind::kScan && !lit.scan.negated) {
      order.push_back(c.catalog.DisplayName(lit.scan.pred));
    }
  }
  return order;
}

TEST(JoinPlannerCompile, OrdersBySelectivityNotParserOrder) {
  // big/2 has 100 rows, small/2 has 2; both are unbound at the start, so
  // the planner must lead with small even though big is written first.
  std::vector<std::vector<int64_t>> big, small;
  for (int64_t i = 0; i < 100; ++i) big.push_back({i, i % 10});
  small = {{1, 2}, {3, 4}};
  auto c = CompileWithPlanner("out(X, Z) <- big(X, Y), small(Y, Z).",
                              {{"big", big}, {"small", small}});
  EXPECT_EQ(ScanOrder(*c, 0),
            (std::vector<std::string>{"small/2", "big/2"}));
  // Parser order is kept without the planner.
  auto u = CompileWithPlanner("out(X, Z) <- big(X, Y), small(Y, Z).",
                              {{"big", big}, {"small", small}},
                              /*use_planner=*/false);
  EXPECT_EQ(ScanOrder(*u, 0),
            (std::vector<std::string>{"big/2", "small/2"}));
  EXPECT_TRUE(u->rules[0].plan_decisions.empty());
}

TEST(JoinPlannerCompile, BoundProbeBeatsSmallerUnboundScan) {
  // After edge(X, Y) binds Y, probing big/2 on its first column
  // (est 1000/1000 = 1) is cheaper than scanning mid/1 (est 50).
  std::vector<std::vector<int64_t>> big, mid, edge;
  for (int64_t i = 0; i < 1000; ++i) big.push_back({i, i});
  for (int64_t i = 0; i < 50; ++i) mid.push_back({i});
  edge = {{1, 2}};
  auto c = CompileWithPlanner("out(X, Z) <- edge(X, Y), mid(W), big(Y, Z).",
                              {{"big", big}, {"mid", mid}, {"edge", edge}});
  EXPECT_EQ(ScanOrder(*c, 0),
            (std::vector<std::string>{"edge/2", "big/2", "mid/1"}));
  // The recorded decisions mirror the chosen order, with the boundness
  // the picker saw.
  const auto& dec = c->rules[0].plan_decisions;
  ASSERT_EQ(dec.size(), 3u);
  EXPECT_EQ(dec[0].goal, "edge/2");
  EXPECT_EQ(dec[0].bound_cols, 0u);
  EXPECT_EQ(dec[1].goal, "big/2");
  EXPECT_EQ(dec[1].bound_cols, 1u);
  EXPECT_EQ(dec[2].goal, "mid/1");
}

TEST(JoinPlannerCompile, AutoCreatesTheIndexEachReorderedGoalNeeds) {
  std::vector<std::vector<int64_t>> big, small;
  for (int64_t i = 0; i < 100; ++i) big.push_back({i, i % 10});
  small = {{1, 2}, {3, 4}};
  auto c = CompileWithPlanner("out(X, Z) <- big(Y, X), small(Y, Z).",
                              {{"big", big}, {"small", small}});
  // small leads; big is then probed on its *first* column (bound Y), so
  // the compiler must have created a column-0 index on big and picked it.
  ASSERT_EQ(ScanOrder(*c, 0),
            (std::vector<std::string>{"small/2", "big/2"}));
  const CompiledLiteral& probe = c->rules[0].generator.back();
  ASSERT_EQ(probe.kind, CompiledLiteral::Kind::kScan);
  EXPECT_EQ(probe.scan.bound_cols, std::vector<uint32_t>{0});
  ASSERT_GE(probe.scan.index_id, 0);
  const Relation& big_rel =
      c->catalog.relation(c->catalog.Lookup("big", 2));
  ASSERT_GT(big_rel.num_indices(), static_cast<size_t>(probe.scan.index_id));
  EXPECT_EQ(big_rel.index(static_cast<size_t>(probe.scan.index_id)).columns(),
            std::vector<uint32_t>{0});
}

TEST(JoinPlannerCompile, FiltersStayAheadOfScans) {
  std::vector<std::vector<int64_t>> e = {{1, 2}, {2, 3}};
  auto c = CompileWithPlanner("out(X, Z) <- e(X, Y), Z = Y + 1, e(Y, W).",
                              {{"e", e}});
  const auto& plan = c->rules[0].generator;
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].kind, CompiledLiteral::Kind::kScan);
  // The assignment becomes ready right after the first scan and must be
  // placed before the next scan, whatever its estimate.
  EXPECT_EQ(plan[1].kind, CompiledLiteral::Kind::kCompare);
  EXPECT_EQ(plan[2].kind, CompiledLiteral::Kind::kScan);
}

TEST(JoinPlannerCompile, SingleGoalBodyIsUntouched) {
  auto c = CompileWithPlanner("out(X) <- e(X, X).", {{"e", {{1, 1}}}});
  EXPECT_EQ(ScanOrder(*c, 0), (std::vector<std::string>{"e/2"}));
  ASSERT_EQ(c->rules[0].plan_decisions.size(), 1u);
  EXPECT_DOUBLE_EQ(c->rules[0].plan_decisions[0].est_rows, 1.0);
}

TEST(JoinPlannerCompile, CrossProductPicksSmallerSideFirst) {
  // No shared variables: a genuine cross product. The planner leads with
  // the smaller relation; the product still enumerates completely.
  std::vector<std::vector<int64_t>> big, small;
  for (int64_t i = 0; i < 64; ++i) big.push_back({i});
  small = {{100}, {200}};
  auto c = CompileWithPlanner("pair(X, Y) <- big(X), small(Y).",
                              {{"big", big}, {"small", small}});
  EXPECT_EQ(ScanOrder(*c, 0),
            (std::vector<std::string>{"small/1", "big/1"}));
  // Both scans stay full scans: nothing ever bounds their columns.
  for (const CompiledLiteral& lit : c->rules[0].generator) {
    EXPECT_TRUE(lit.scan.bound_cols.empty());
  }
}

TEST(JoinPlannerCompile, AllUnboundIdbGoalsKeepParserOrder) {
  // Two empty IDB atoms tie on the default estimate; the greedy pick
  // must fall back to the first ready goal, i.e. parser order — keeping
  // planned compiles of IDB-only rules stable.
  auto c = CompileWithPlanner(R"(
    a(1). b(2).
    out(X, Y) <- a(X), b(Y).
  )");
  std::vector<std::string> order;
  for (const CompiledLiteral& lit : RuleFor(*c, "out/2").generator) {
    if (lit.kind == CompiledLiteral::Kind::kScan) {
      order.push_back(c->catalog.DisplayName(lit.scan.pred));
    }
  }
  EXPECT_EQ(order, (std::vector<std::string>{"a/1", "b/1"}));
}

TEST(JoinPlannerCompile, DeltaAtomStaysPinnedInDeltaPlans) {
  // Seminaive variants must keep the delta occurrence leading, planner
  // or not: the delta window is the smallest input by construction.
  std::vector<std::vector<int64_t>> edge;
  for (int64_t i = 0; i < 30; ++i) edge.push_back({i, i + 1});
  auto c = CompileWithPlanner(R"(
    tc(X, Y) <- edge(X, Y).
    tc(X, Z) <- tc(X, Y), edge(Y, Z).
  )", {{"edge", edge}});
  const CompiledRule& rec = c->rules[1];
  ASSERT_EQ(rec.delta_plans.size(), 1u);
  const CompiledLiteral& lead = rec.delta_plans[0].front();
  ASSERT_EQ(lead.kind, CompiledLiteral::Kind::kScan);
  EXPECT_EQ(lead.scan.clique_occurrence, 0u);
  EXPECT_EQ(c->catalog.DisplayName(lead.scan.pred), "tc/2");
}

}  // namespace
}  // namespace gdlog
