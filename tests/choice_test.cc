// Tests for the choice construct: FD enforcement, multiple choice
// models across seeds, choice in recursion, and the chosen memo.
#include <gtest/gtest.h>

#include <set>

#include "api/engine.h"

namespace gdlog {
namespace {

constexpr char kExample1[] = R"(
  takes(andy, engl, 4).
  takes(mark, engl, 2).
  takes(ann, math, 3).
  takes(mark, math, 2).
  a_st(St, Crs, G) <- takes(St, Crs, G), choice(Crs, St), choice(St, Crs).
)";

std::set<std::pair<std::string, std::string>> Assignment(const Engine& e) {
  std::set<std::pair<std::string, std::string>> out;
  for (const auto& row : e.Query("a_st", 3)) {
    out.insert({std::string(e.store().SymbolName(row[0])),
                std::string(e.store().SymbolName(row[1]))});
  }
  return out;
}

TEST(Choice, Example1ModelsMatchThePaper) {
  // The paper lists exactly three choice models M1, M2, M3.
  const std::set<std::set<std::pair<std::string, std::string>>> valid = {
      {{"andy", "engl"}, {"ann", "math"}},
      {{"mark", "engl"}, {"ann", "math"}},
      {{"andy", "engl"}, {"mark", "math"}},
  };
  std::set<std::set<std::pair<std::string, std::string>>> seen;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    EngineOptions opts;
    opts.eval.choice_seed = seed;
    Engine e(opts);
    ASSERT_TRUE(e.LoadProgram(kExample1).ok());
    ASSERT_TRUE(e.Run().ok());
    const auto model = Assignment(e);
    EXPECT_TRUE(valid.count(model)) << "invalid choice model for seed "
                                    << seed;
    seen.insert(model);
  }
  // Different seeds should reach more than one of the three models.
  EXPECT_GE(seen.size(), 2u);
}

TEST(Choice, EveryModelIsStable) {
  for (uint64_t seed : {0u, 1u, 2u, 3u}) {
    EngineOptions opts;
    opts.eval.choice_seed = seed;
    Engine e(opts);
    ASSERT_TRUE(e.LoadProgram(kExample1).ok());
    ASSERT_TRUE(e.Run().ok());
    auto check = e.VerifyStableModel();
    ASSERT_TRUE(check.ok()) << check.status().ToString();
    EXPECT_TRUE(check->stable) << check->diagnostic;
  }
}

TEST(Choice, SingleFdOnly) {
  // One student per course, but students may take several courses.
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    takes(a, c1). takes(b, c1). takes(a, c2). takes(b, c2).
    pick(St, Crs) <- takes(St, Crs), choice(Crs, St).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  const auto rows = e.Query("pick", 2);
  EXPECT_EQ(rows.size(), 2u);  // one per course
  std::set<Value> courses;
  for (const auto& r : rows) courses.insert(r[1]);
  EXPECT_EQ(courses.size(), 2u);
}

TEST(Choice, EmptyKeySelectsGlobalWitness) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    item(1). item(2). item(3).
    one(X) <- item(X), choice((), X).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.Query("one", 1).size(), 1u);
}

TEST(Choice, CompoundKeyTuple) {
  // FD (A, B) -> C.
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    t(1, 1, 10). t(1, 1, 20). t(1, 2, 30). t(2, 1, 40).
    f(A, B, C) <- t(A, B, C), choice((A, B), C).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.Query("f", 3).size(), 3u);  // one of the (1,1) pair survives
}

TEST(Choice, RecursiveChoiceReachesEverything) {
  // Example 3-style: each reachable node adopted exactly once.
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    root(0).
    edge(0, 1). edge(0, 2). edge(1, 3). edge(2, 3). edge(3, 4).
    tree(nil, R) <- root(R).
    tree(X, Y) <- tree(_, X), edge(X, Y), choice(Y, X).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  const auto rows = e.Query("tree", 2);
  // nil->0 plus one entry per node 1..4.
  EXPECT_EQ(rows.size(), 5u);
  std::set<Value> entered;
  for (const auto& r : rows) EXPECT_TRUE(entered.insert(r[1]).second);
}

TEST(Choice, StatsCountChosenTuples) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(kExample1).ok());
  ASSERT_TRUE(e.Run().ok());
  ASSERT_NE(e.stats(), nullptr);
  EXPECT_EQ(e.stats()->gamma_firings, 2u);
  const CandidateQueueStats* qs = e.QueueStats(0);
  ASSERT_NE(qs, nullptr);
  EXPECT_EQ(qs->inserted, 4u);   // all takes tuples become candidates
  EXPECT_EQ(qs->fired, 2u);      // two admissible firings
  EXPECT_EQ(qs->redundant, 2u);  // two FD-blocked candidates
}

TEST(Choice, RewrittenProgramTextMentionsChosen) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(kExample1).ok());
  auto text = e.RewrittenProgramText();
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("chosen$0"), std::string::npos);
  EXPECT_NE(text->find("not diffChoice$0"), std::string::npos);
}

}  // namespace
}  // namespace gdlog
