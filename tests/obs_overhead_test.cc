// Always-on observability must stay cheap: this test times one bench
// kernel (the E7 choice-assignment workload) with default observability
// (metrics + flight recorder on) against a fully-off build of the same
// engine, and asserts the median overhead stays under 5%. A third arm
// adds provenance + choice audit, which is opt-in and allowed its own
// documented budget (60%, see docs/OBSERVABILITY.md) — it annotates
// every insert and audits every gamma firing — while leaving the
// provenance-off path at the always-on bound.
//
// Methodology: interleaved repetitions across all arms (so clock drift
// and thermal state hit the arms equally) with one warmup per arm,
// compared by median — the statistic bench_compare.py enforces in CI. A
// small absolute epsilon keeps the ratio meaningful if the machine is
// fast enough to push medians toward the timer floor.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "api/engine.h"

namespace gdlog {
namespace {

constexpr uint32_t kStudents = 1200;
constexpr int kEnrolmentsPer = 4;
constexpr int kReps = 5;

enum class Arm {
  kObsOff,   // metrics + recorder disabled
  kObsOn,    // default always-on observability, provenance off
  kProvOn,   // observability + provenance + choice audit
  kServe,    // obs on + HTTP endpoint enabled but never scraped
};

/// Example 1 at scale: n students x n courses, bi-injective assignment.
double RunKernelSeconds(Arm arm) {
  EngineOptions opts;
  if (arm == Arm::kObsOff) {
    opts.obs.metrics_enabled = false;
    opts.obs.recorder_enabled = false;
  }
  if (arm == Arm::kProvOn) opts.provenance = true;
  if (arm == Arm::kServe) {
    opts.obs_http.enabled = true;
    opts.obs_http.port = 0;
  }
  Engine e(opts);
  EXPECT_TRUE(e.LoadProgram(R"(
    a_st(St, Crs) <- takes(St, Crs), choice(Crs, St), choice(St, Crs).
  )").ok());
  // Deterministic enrolments (xorshift), identical across arms and reps.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (uint32_t st = 0; st < kStudents; ++st) {
    for (int k = 0; k < kEnrolmentsPer; ++k) {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      const auto crs = static_cast<int64_t>(state % kStudents);
      EXPECT_TRUE(
          e.AddFact("takes", {Value::Int(st), Value::Int(crs)}).ok());
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(e.Run().ok());
  const auto t1 = std::chrono::steady_clock::now();
  EXPECT_GT(e.Query("a_st", 2).size(), 0u);
  return std::chrono::duration<double>(t1 - t0).count();
}

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

TEST(ObsOverhead, AlwaysOnObservabilityStaysUnderFivePercent) {
  // Warmup every arm (allocator, page cache, branch predictors).
  (void)RunKernelSeconds(Arm::kObsOn);
  (void)RunKernelSeconds(Arm::kObsOff);
  (void)RunKernelSeconds(Arm::kProvOn);
  std::vector<double> on, off, prov;
  for (int i = 0; i < kReps; ++i) {
    on.push_back(RunKernelSeconds(Arm::kObsOn));
    off.push_back(RunKernelSeconds(Arm::kObsOff));
    prov.push_back(RunKernelSeconds(Arm::kProvOn));
  }
  const double median_on = Median(on);
  const double median_off = Median(off);
  const double median_prov = Median(prov);
  // 5% relative plus a 3ms absolute epsilon: below the epsilon the
  // workload is inside scheduler noise and the ratio is meaningless.
  // With provenance still off this bound must hold unchanged — the
  // annotation path has to cost nothing when not asked for.
  EXPECT_LE(median_on, median_off * 1.05 + 0.003)
      << "obs-on median " << median_on * 1e3 << " ms vs obs-off median "
      << median_off * 1e3 << " ms";
  // Provenance + choice audit are opt-in and pay for row annotation and
  // the audit trail; docs/OBSERVABILITY.md promises at most 60% over the
  // provenance-off engine on choice-heavy workloads.
  EXPECT_LE(median_prov, median_on * 1.60 + 0.005)
      << "provenance median " << median_prov * 1e3
      << " ms vs obs-on median " << median_on * 1e3 << " ms";
}

TEST(ObsOverhead, IdleHttpServerStaysWithinAlwaysOnBound) {
  // The live endpoint's threads block in accept()/queue-wait when no
  // client is connected, so an enabled-but-unscraped server must fit
  // the same always-on budget as plain observability. The progress tap
  // publishing on every round rides along in this arm too.
  (void)RunKernelSeconds(Arm::kServe);
  (void)RunKernelSeconds(Arm::kObsOff);
  std::vector<double> serve, off;
  for (int i = 0; i < kReps; ++i) {
    serve.push_back(RunKernelSeconds(Arm::kServe));
    off.push_back(RunKernelSeconds(Arm::kObsOff));
  }
  const double median_serve = Median(serve);
  const double median_off = Median(off);
  EXPECT_LE(median_serve, median_off * 1.05 + 0.003)
      << "serve-idle median " << median_serve * 1e3
      << " ms vs obs-off median " << median_off * 1e3 << " ms";
}

}  // namespace
}  // namespace gdlog
