// Edge cases of the per-rule ordering proofs behind the Section 4
// stage-stratification test: stage arithmetic, max/min, constants, and
// transitive chains.
#include <gtest/gtest.h>

#include "analysis/stage.h"
#include "parser/parser.h"

namespace gdlog {
namespace {

CliqueClass ClassOf(const char* text, const char* pred, uint32_t arity) {
  ValueStore store;
  auto prog = ParseProgram(&store, text);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  auto a = AnalyzeStages(*prog);
  EXPECT_TRUE(a.ok()) << a.status().ToString();
  const PredIndex p = a->graph->Lookup(pred, arity);
  EXPECT_NE(p, kNoPred);
  return a->cliques[a->graph->scc_of(p)].cls;
}

TEST(StageOrdering, PlusTwoIsStrict) {
  // I = J + 2 proves J < I just as well as J + 1.
  EXPECT_EQ(ClassOf(R"(
    p(nil, 0).
    p(X, I) <- next(I), q(X, J), I = J + 2, least(X, I).
    q(X, J) <- p(X, J), r(X).
  )", "p", 2),
            CliqueClass::kStageStratified);
}

TEST(StageOrdering, ExplicitLessEqualOnNextRuleIsNotStrict) {
  // J <= I alone does not prove J < I for a next rule: rejected.
  EXPECT_EQ(ClassOf(R"(
    p(nil, 0).
    p(X, I) <- next(I), q(X, J), J <= I, least(X, I).
    q(X, J) <- p(X, J), r(X).
  )", "p", 2),
            CliqueClass::kRejected);
}

TEST(StageOrdering, TransitiveChainProves) {
  // J < K and K <= I chains to J < I.
  EXPECT_EQ(ClassOf(R"(
    p(nil, 0).
    p(X, I) <- next(I), q(X, J), aux(K), J < K, K <= I, least(X, I).
    q(X, J) <- p(X, J), r(X).
  )", "p", 2),
            CliqueClass::kStageStratified);
}

TEST(StageOrdering, MaxGivesNonStrictForFlatRules) {
  // Huffman's shape: I = max(J, K) satisfies the flat-rule (non-strict)
  // obligation for both J and K.
  EXPECT_EQ(ClassOf(R"(
    h(X, 0) <- base(X).
    h(X, I) <- next(I), f(X, J), J < I, least(X, I).
    f(t(X, Y), I) <- h(X, J), h(Y, K), I = max(J, K), X != Y.
  )", "h", 2),
            CliqueClass::kStageStratified);
}

TEST(StageOrdering, MaxAloneInsufficientForNextRules) {
  // I = max(J, K) only proves J <= I: a next rule needs strictness.
  EXPECT_EQ(ClassOf(R"(
    p(nil, 0).
    p(X, I) <- next(I), q(X, J), aux(K), I = max(J, K), least(X, I).
    q(X, J) <- p(X, J), r(X).
  )", "p", 2),
            CliqueClass::kRejected);
}

TEST(StageOrdering, ConstantStageInFlatHead) {
  // comp(X, 0) <- base(X): constant 0 head with no clique goals in the
  // tail is trivially fine.
  EXPECT_EQ(ClassOf(R"(
    c(X, 0) <- base(X).
    c(X, I) <- next(I), d(X, J), J < I, least(X, I).
    d(X, J) <- c(X, J), e(X).
  )", "c", 2),
            CliqueClass::kStageStratified);
}

TEST(StageOrdering, ConstantVsConstantComparison) {
  // A flat rule whose head and body stages are both integer constants:
  // the obligation 0 <= 0 is discharged from the constants alone.
  EXPECT_EQ(ClassOf(R"(
    c(X, 0) <- base(X).
    c(X, I) <- next(I), d(X, J), J < I, least(X, I).
    d(X, 0) <- c(X, 0), f(X).
    d(X, J) <- c(X, J), e(X).
  )", "c", 2),
            CliqueClass::kStageStratified);
}

TEST(StageOrdering, MixedNextAndFlatForOnePredicateRejected) {
  // The same program with the constant-stage rule on the NEXT predicate
  // violates the stage-clique condition (rules of one predicate must be
  // all next or all flat).
  EXPECT_EQ(ClassOf(R"(
    c(X, 0) <- base(X).
    c(X, 1) <- c(X, 0), f(X).
    c(X, I) <- next(I), d(X, J), J < I, least(X, I).
    d(X, J) <- c(X, J), e(X).
  )", "c", 2),
            CliqueClass::kRejected);
}

TEST(StageOrdering, MinusOnePointsTheWrongWay) {
  // I = J - 1 proves I < J — the body stage EXCEEDS the head: rejected.
  EXPECT_EQ(ClassOf(R"(
    p(nil, 0).
    p(X, I) <- next(I), q(X, J), I = J - 1, least(X, I).
    q(X, J) <- p(X, J), r(X).
  )", "p", 2),
            CliqueClass::kRejected);
}

TEST(StageOrdering, NegatedGoalNeedsStrict) {
  // A flat rule with J <= I on a NEGATED clique goal: negated goals need
  // strict stratification, so <= downgrades the clique.
  ValueStore store;
  auto prog = ParseProgram(&store, R"(
    p(nil, 0).
    p(X, I) <- next(I), d(X, J), J < I, least(X, I).
    d(X, I) <- p(X, I), base(X), not (p(X, J2), J2 <= I).
  )");
  ASSERT_TRUE(prog.ok());
  auto a = AnalyzeStages(*prog);
  ASSERT_TRUE(a.ok());
  const PredIndex p = a->graph->Lookup("p", 2);
  EXPECT_EQ(a->cliques[a->graph->scc_of(p)].cls, CliqueClass::kRelaxedStage);
}

TEST(StageOrdering, EqualityPropagatesBothWays) {
  // K = J, J < I proves K < I.
  EXPECT_EQ(ClassOf(R"(
    p(nil, 0).
    p(X, I) <- next(I), q(X, J), K = J, K < I, least(X, I).
    q(X, J) <- p(X, J), r(X).
  )", "p", 2),
            CliqueClass::kStageStratified);
}

}  // namespace
}  // namespace gdlog
