// Robustness: malformed inputs never crash (Status only), evaluation is
// deterministic for a fixed seed, nested negation works, and the engine
// survives stress-sized instances.
#include <gtest/gtest.h>

#include "api/engine.h"
#include "common/rng.h"
#include "greedy/prim.h"
#include "parser/parser.h"
#include "workload/graph_gen.h"

namespace gdlog {
namespace {

TEST(Robustness, ParserNeverCrashesOnMutatedPrograms) {
  // Take a valid program and splice random byte mutations into it; the
  // parser must return a Status (ok or error), never crash.
  const std::string base = R"(
    prm(nil, 0, 0, 0).
    prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I,
                       least(C, I), choice(Y, X).
    new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
  )";
  const char alphabet[] = "(),.<->=!+*/ XYZabc019_%\"\\";
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::string text = base;
    const int mutations = 1 + static_cast<int>(rng.NextBounded(6));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.NextBounded(text.size());
      const char c = alphabet[rng.NextBounded(sizeof(alphabet) - 1)];
      switch (rng.NextBounded(3)) {
        case 0:
          text[pos] = c;
          break;
        case 1:
          text.insert(text.begin() + pos, c);
          break;
        default:
          text.erase(text.begin() + pos);
          break;
      }
    }
    ValueStore store;
    auto prog = ParseProgram(&store, text);  // must not crash
    (void)prog;
  }
  SUCCEED();
}

TEST(Robustness, MutatedProgramsLoadOrFailCleanly) {
  // Structurally valid but semantically scrambled programs must be
  // accepted or rejected via Status at load time, never crash.
  const char* variants[] = {
      "p(X, I) <- next(I), q(X).",                      // no stage in head?
      "p(I, I2) <- next(I), next(I2), q(I).",           // two next goals
      "p(X) <- least(X).",                              // extremum only
      "p(X) <- choice(X, X).",                          // self FD
      "p(X) <- q(X), least(X, X).",                     // cost in group
      "p(X, I) <- next(I), q(X), most(X, I), least(X, I).",  // two extrema
      "p(X) <- not q(X).",                              // negation only
      "p(X, Y) <- q(X), Y = Z + 1.",                    // unbound arith
      "p(X) <- q(X + 1).",                              // arith in atom
  };
  for (const char* text : variants) {
    Engine e;
    const Status st = e.LoadProgram(text);
    if (st.ok()) {
      (void)e.Run();  // may fail, must not crash
    }
  }
  SUCCEED();
}

TEST(Robustness, DeterministicAcrossRuns) {
  GraphGenOptions opts;
  opts.seed = 123;
  const Graph g = ConnectedRandomGraph(30, 60, opts);
  auto canonical = [&](uint64_t seed) {
    EngineOptions eo;
    eo.eval.choice_seed = seed;
    auto r = PrimMst(g, 0, eo);
    EXPECT_TRUE(r.ok());
    std::string repr;
    for (const MstEdge& e : r->edges) {
      repr += std::to_string(e.parent) + ">" + std::to_string(e.node) +
              "@" + std::to_string(e.stage) + ";";
    }
    return repr;
  };
  EXPECT_EQ(canonical(0), canonical(0));
  EXPECT_EQ(canonical(42), canonical(42));
}

TEST(Robustness, NestedNegatedConjunctions) {
  // not (a(X), not (b(X))) == a-rows where b also holds... i.e. the
  // outer negation fails iff some a(X) has no b(X).
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    a(1). a(2). b(1).
    probe(X) <- a(X), not (c(X), not (b(X))).
    c(1). c(2).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  // For X=1: c(1) holds and b(1) holds, so inner not(b) fails, so no
  // witness: probe(1). For X=2: c(2) holds and b(2) absent: witness
  // exists, probe(2) fails.
  const auto rows = e.Query("probe", 1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 1);
}

TEST(Robustness, LongChainDeepRecursion) {
  // 5000-node chain: the iterative SCC computation and the seminaive
  // loop must handle depth without stack issues.
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    reach(0).
    reach(Y) <- reach(X), edge(X, Y).
  )").ok());
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(e.AddFact("edge", {Value::Int(i), Value::Int(i + 1)}).ok());
  }
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.Query("reach", 1).size(), static_cast<size_t>(n + 1));
}

TEST(Robustness, WideFactLoad) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram("touched(X) <- wide(X, _, _, _, _, _).").ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(e.AddFact("wide", {Value::Int(i), Value::Int(i), e.Sym("k"),
                                   Value::Nil(), Value::Int(-i),
                                   Value::Int(i * 7)}).ok());
  }
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.Query("touched", 1).size(), 2000u);
}

TEST(Robustness, DeepTermNesting) {
  // Build a deeply nested term through repeated rule application.
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    wrap(z, 0).
    wrap(s(T), N) <- wrap(T, M), M < 40, N = M + 1.
    top(T) <- wrap(T, 40).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  const auto rows = e.Query("top", 1);
  ASSERT_EQ(rows.size(), 1u);
  const std::string text = e.store().ToString(rows[0][0]);
  EXPECT_EQ(text.find("s(s(s("), 0u);
  EXPECT_EQ(std::count(text.begin(), text.end(), 's'), 40);
}

TEST(Robustness, SelfLoopEdgeHarmless) {
  Graph g;
  g.num_nodes = 3;
  g.edges = {{0, 1, 5}, {1, 2, 6}, {1, 1, 1}};  // self loop, cheapest!
  auto r = PrimMst(g, 0);
  ASSERT_TRUE(r.ok());
  // The self loop can never fire (node 1 is entered once via 0-1).
  EXPECT_EQ(r->total_cost, 11);
  EXPECT_EQ(r->edges.size(), 2u);
}

TEST(Robustness, NaiveEvaluationAgreesWithSeminaive) {
  // The seminaive refinement is a pure optimization: switching it off
  // must not change any result.
  GraphGenOptions opts;
  opts.seed = 17;
  const Graph g = ConnectedRandomGraph(25, 50, opts);
  auto semi = PrimMst(g, 0);
  EngineOptions naive_opts;
  naive_opts.eval.use_seminaive = false;
  auto naive = PrimMst(g, 0, naive_opts);
  ASSERT_TRUE(semi.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(semi->total_cost, naive->total_cost);
  ASSERT_EQ(semi->edges.size(), naive->edges.size());
  for (size_t i = 0; i < semi->edges.size(); ++i) {
    EXPECT_EQ(semi->edges[i].node, naive->edges[i].node);
    EXPECT_EQ(semi->edges[i].stage, naive->edges[i].stage);
  }
  // And the naive engine's work is strictly larger.
  EXPECT_GT(naive->engine->stats()->exec.scan_rows,
            semi->engine->stats()->exec.scan_rows);
}

TEST(Robustness, EmptyProgramAndEmptyEdb) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram("").ok());
  EXPECT_TRUE(e.Run().ok());

  Engine e2;
  ASSERT_TRUE(e2.LoadProgram(R"(
    sp(nil, 0, 0).
    sp(X, C, I) <- next(I), p(X, C), least(C, I).
  )").ok());
  ASSERT_TRUE(e2.Run().ok());  // no p facts: just the seed
  EXPECT_EQ(e2.Query("sp", 3).size(), 1u);
}

}  // namespace
}  // namespace gdlog
