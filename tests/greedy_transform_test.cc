// Tests for the Section 7 extrema-propagation transformation: the naive
// accumulate-and-minimize matching becomes the paper's Example 7, and
// the greedy result is optimal under the asserted (partition) matroid.
#include "analysis/greedy_transform.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "api/engine.h"
#include "ast/printer.h"
#include "parser/parser.h"
#include "workload/graph_gen.h"

namespace gdlog {
namespace {

constexpr char kNaiveMatching[] = R"(
  opt_matching(C) <- a_matching(C), least(C).
  a_matching(C) <- matching(X, Y, C, I), most(I).
  matching(nil, nil, 0, 0).
  matching(X, Y, C, I) <- next(I), new_arc(X, Y, C, J), I = J + 1,
                          choice(Y, X), choice(X, Y).
  new_arc(X, Y, C, J) <- matching(_, _, C1, J), g(X, Y, C2), C = C1 + C2.
)";

TEST(GreedyTransform, RequiresMatroidAssertion) {
  ValueStore store;
  auto prog = ParseProgram(&store, kNaiveMatching);
  ASSERT_TRUE(prog.ok());
  auto result = PropagateExtremaIntoChoice(*prog, {});
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("matroid"), std::string::npos);
}

TEST(GreedyTransform, ProducesExampleSevenShape) {
  ValueStore store;
  auto prog = ParseProgram(&store, kNaiveMatching);
  ASSERT_TRUE(prog.ok());
  GreedyTransformOptions opts;
  opts.assume_matroid = true;
  auto result = PropagateExtremaIntoChoice(*prog, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stage_predicate, "matching");
  EXPECT_EQ(result->cost_position, 2);
  // The post-condition pair and the accumulator are gone; the seed and
  // the greedy next rule remain.
  ASSERT_EQ(result->transformed.rules.size(), 2u);
  const std::string text = ProgramToString(store, result->transformed);
  EXPECT_EQ(text.find("opt_matching"), std::string::npos);
  EXPECT_EQ(text.find("new_arc"), std::string::npos);
  // Example 7's shape: next + base relation + least(C2, I) + both FDs.
  EXPECT_NE(text.find("next("), std::string::npos);
  EXPECT_NE(text.find("g(X, Y, C2)"), std::string::npos);
  EXPECT_NE(text.find("least(C2, I)"), std::string::npos);
  EXPECT_NE(text.find("choice(Y, X)"), std::string::npos);
  EXPECT_NE(text.find("choice(X, Y)"), std::string::npos);
}

TEST(GreedyTransform, TransformedProgramRunsAsGreedyMatching) {
  ValueStore parse_store;
  auto prog = ParseProgram(&parse_store, kNaiveMatching);
  ASSERT_TRUE(prog.ok());
  GreedyTransformOptions opts;
  opts.assume_matroid = true;
  auto result = PropagateExtremaIntoChoice(*prog, opts);
  ASSERT_TRUE(result.ok());

  // Run the transformed program on a bipartite instance.
  GraphGenOptions gopts;
  gopts.seed = 12;
  const Graph g = BipartiteGraph(6, 6, 20, gopts);
  Engine e;
  ValueStore dummy;
  ASSERT_TRUE(
      e.LoadProgram(ProgramToString(parse_store, result->transformed)).ok());
  for (const GraphEdge& edge : g.edges) {
    ASSERT_TRUE(e.AddFact("g", {Value::Int(edge.u), Value::Int(edge.v),
                                Value::Int(edge.w)}).ok());
  }
  ASSERT_TRUE(e.Run().ok());

  // Per-stage costs ascend (greedy order) and the selection respects
  // both FDs.
  int64_t prev = -1;
  int64_t total = 0;
  std::set<int64_t> sources, targets;
  std::vector<std::pair<int64_t, std::vector<Value>>> rows;
  for (const auto& row : e.Query("matching", 4)) {
    if (row[0].is_nil()) continue;
    rows.push_back({row[3].AsInt(), row});
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [stage, row] : rows) {
    EXPECT_GT(row[2].AsInt(), prev);
    prev = row[2].AsInt();
    total += row[2].AsInt();
    EXPECT_TRUE(sources.insert(row[0].AsInt()).second);
    EXPECT_TRUE(targets.insert(row[1].AsInt()).second);
  }
  EXPECT_GT(rows.size(), 0u);
}

TEST(GreedyTransform, RejectsProgramsWithoutThePattern) {
  ValueStore store;
  auto prog = ParseProgram(&store, R"(
    p(X) <- q(X).
    q(1).
  )");
  ASSERT_TRUE(prog.ok());
  GreedyTransformOptions opts;
  opts.assume_matroid = true;
  EXPECT_FALSE(PropagateExtremaIntoChoice(*prog, opts).ok());
}

TEST(GreedyTransform, RejectsWhenAccumulatorMissing) {
  // A next rule without the C = C1 + C2 accumulator feeding it.
  ValueStore store;
  auto prog = ParseProgram(&store, R"(
    opt(C) <- reach(C), least(C).
    reach(C) <- p(X, C, I), most(I).
    p(nil, 0, 0).
    p(X, C, I) <- next(I), q(X, C), choice((), X).
  )");
  ASSERT_TRUE(prog.ok());
  GreedyTransformOptions opts;
  opts.assume_matroid = true;
  EXPECT_FALSE(PropagateExtremaIntoChoice(*prog, opts).ok());
}

}  // namespace
}  // namespace gdlog
