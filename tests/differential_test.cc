// Differential harness for the parallel evaluator: every shipped
// programs/ example and every greedy wrapper must produce the exact
// serial result at threads=2 and threads=8 (bit-identical model, same
// insertion order, same choice decisions), and the computed costs must
// equal the procedural baselines — so a scheduling or merge bug cannot
// hide behind "still a valid stable model".
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "baselines/dijkstra.h"
#include "baselines/heapsort.h"
#include "baselines/huffman.h"
#include "baselines/kruskal.h"
#include "baselines/matching.h"
#include "baselines/prim.h"
#include "baselines/tsp.h"
#include "greedy/dijkstra.h"
#include "greedy/huffman.h"
#include "greedy/kruskal.h"
#include "greedy/matching.h"
#include "greedy/prim.h"
#include "greedy/sort.h"
#include "greedy/tsp.h"
#include "workload/graph_gen.h"
#include "workload/relation_gen.h"
#include "workload/text_gen.h"

namespace gdlog {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string ProgramPath(const std::string& name) {
  return std::string(GDLOG_SOURCE_DIR) + "/programs/" + name;
}

/// The full model as ordered text: every predicate mentioned by the
/// program, tuples in relation insertion order. Captures not just the
/// fact set but the order the engine derived it in — the bit-identity
/// contract of EvalOptions::threads.
std::vector<std::string> DumpModel(const Engine& e) {
  std::vector<std::string> lines;
  for (const auto& ref : e.program()->AllPredicates()) {
    for (const auto& tuple : e.Query(ref.name, ref.arity)) {
      std::string line = ref.name;
      line += '(';
      for (size_t i = 0; i < tuple.size(); ++i) {
        if (i) line += ',';
        line += e.store().ToString(tuple[i]);
      }
      line += ')';
      lines.push_back(std::move(line));
    }
  }
  return lines;
}

EngineOptions Threaded(uint32_t threads) {
  EngineOptions opts;
  opts.eval.threads = threads;
  // Force leading-scan partitioning even on the tiny shipped examples.
  opts.eval.parallel_min_rows = 2;
  return opts;
}

std::vector<std::string> RunProgram(const std::string& text,
                                    uint32_t threads) {
  Engine e(Threaded(threads));
  auto load = e.LoadProgram(text);
  EXPECT_TRUE(load.ok()) << load.ToString();
  auto run = e.Run();
  EXPECT_TRUE(run.ok()) << run.ToString();
  EXPECT_GE(e.stats()->threads_used, 1u);
  return DumpModel(e);
}

class ProgramDifferential : public ::testing::TestWithParam<const char*> {};

TEST_P(ProgramDifferential, ParallelModelBitIdenticalToSerial) {
  const std::string text = ReadFileOrDie(ProgramPath(GetParam()));
  const std::vector<std::string> serial = RunProgram(text, 1);
  ASSERT_FALSE(serial.empty());
  for (uint32_t threads : {2u, 8u}) {
    EXPECT_EQ(RunProgram(text, threads), serial)
        << GetParam() << " diverged at threads=" << threads;
  }
}

TEST_P(ProgramDifferential, PlannerPreservesTheModel) {
  const std::string text = ReadFileOrDie(ProgramPath(GetParam()));
  EngineOptions unplanned;
  unplanned.eval.use_join_planner = false;
  Engine e(unplanned);
  ASSERT_TRUE(e.LoadProgram(text).ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(DumpModel(e), RunProgram(text, 1)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Programs, ProgramDifferential,
                         ::testing::Values("course_assignment.dl",
                                           "huffman.dl", "kruskal.dl",
                                           "prim.dl", "sort.dl"));

// -- Greedy wrappers vs procedural baselines, across thread counts ------

class ThreadSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ThreadSweep, PrimCostEqualsBaseline) {
  GraphGenOptions opts;
  opts.seed = 17;
  const Graph g = ConnectedRandomGraph(30, 60, opts);
  auto r = PrimMst(g, 0, Threaded(GetParam()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->total_cost, BaselinePrim(g, 0).total_cost);
}

TEST_P(ThreadSweep, KruskalCostEqualsBaseline) {
  GraphGenOptions opts;
  opts.seed = 23;
  const Graph g = ConnectedRandomGraph(20, 40, opts);
  auto r = KruskalMst(g, Threaded(GetParam()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->total_cost, BaselineKruskal(g).total_cost);
}

TEST_P(ThreadSweep, DijkstraDistancesEqualBaseline) {
  GraphGenOptions opts;
  opts.seed = 31;
  const Graph g = ConnectedRandomGraph(25, 70, opts);
  auto r = DijkstraSssp(g, 0, Threaded(GetParam()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::vector<int64_t> base = BaselineDijkstra(g, 0);
  ASSERT_EQ(r->settled.size(), g.num_nodes);
  for (const SettledNode& s : r->settled) {
    EXPECT_EQ(s.distance, base[static_cast<size_t>(s.node)])
        << "node " << s.node;
  }
}

TEST_P(ThreadSweep, HuffmanCostEqualsBaseline) {
  TextGenOptions opts;
  opts.seed = 11;
  const auto freqs = ZipfLetterFrequencies(10, opts);
  auto r = HuffmanTree(freqs, Threaded(GetParam()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->total_cost, BaselineHuffman(freqs).total_cost);
}

TEST_P(ThreadSweep, MatchingCostEqualsBaseline) {
  GraphGenOptions opts;
  opts.seed = 41;
  const Graph g = BipartiteGraph(12, 12, 60, opts);
  auto r = GreedyMatching(g, Threaded(GetParam()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->total_cost, BaselineGreedyMatching(g).total_cost);
}

TEST_P(ThreadSweep, SortEqualsHeapSort) {
  RelationGenOptions opts;
  opts.seed = 53;
  const auto tuples = RandomCostedRelation(120, opts);
  auto r = SortRelation(tuples, Threaded(GetParam()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->sorted, BaselineHeapSort(tuples));
}

TEST_P(ThreadSweep, TspCostEqualsBaseline) {
  GraphGenOptions opts;
  opts.seed = 61;
  const Graph g = CompleteGraph(9, opts);
  auto r = GreedyTspChain(g, Threaded(GetParam()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->total_cost, BaselineGreedyTsp(g).total_cost);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep, ::testing::Values(1u, 2u, 8u));

// -- Thread-count invariance of whole runs over random instances --------

TEST(DifferentialParallel, PrimModelIdenticalAcrossThreadCounts) {
  GraphGenOptions opts;
  opts.seed = 77;
  const Graph g = ConnectedRandomGraph(40, 90, opts);
  auto serial = PrimMst(g, 0, Threaded(1));
  ASSERT_TRUE(serial.ok());
  const auto expected = DumpModel(*serial->engine);
  for (uint32_t threads : {2u, 8u}) {
    auto r = PrimMst(g, 0, Threaded(threads));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(DumpModel(*r->engine), expected) << "threads=" << threads;
  }
}

TEST(DifferentialParallel, ParallelWorkActuallyHappened) {
  // Guard against the sweep silently degrading to all-serial: a chain TC
  // at threads=8 with a tiny partition floor must push work through the
  // pool.
  Engine e(Threaded(8));
  ASSERT_TRUE(e.LoadProgram(R"(
    tc(X, Y) <- edge(X, Y).
    tc(X, Z) <- tc(X, Y), edge(Y, Z).
  )").ok());
  for (int i = 0; i + 1 < 64; ++i) {
    ASSERT_TRUE(e.AddFact("edge", {Value::Int(i), Value::Int(i + 1)}).ok());
  }
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.stats()->threads_used, 8u);
  EXPECT_GT(e.stats()->parallel_apps, 0u);
  EXPECT_GT(e.stats()->parallel_tasks, e.stats()->parallel_apps)
      << "no delta scan was ever partitioned";
  EXPECT_EQ(e.Query("tc", 2).size(), 64u * 63u / 2u);
}

TEST(DifferentialParallel, ThreadsZeroResolvesToHardwareConcurrency) {
  Engine e(Threaded(0));
  ASSERT_TRUE(e.LoadProgram("p(X) <- q(X).").ok());
  ASSERT_TRUE(e.AddFact("q", {Value::Int(1)}).ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.stats()->threads_used, ThreadPool::HardwareThreads());
}

}  // namespace
}  // namespace gdlog
