// Differential harness for the parallel evaluator: every shipped
// programs/ example and every greedy wrapper must produce the exact
// serial result at threads=2 and threads=8 (bit-identical model, same
// insertion order, same choice decisions), and the computed costs must
// equal the procedural baselines — so a scheduling or merge bug cannot
// hide behind "still a valid stable model".
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "baselines/dijkstra.h"
#include "eval/ir/ir.h"
#include "baselines/heapsort.h"
#include "baselines/huffman.h"
#include "baselines/kruskal.h"
#include "baselines/matching.h"
#include "baselines/prim.h"
#include "baselines/tsp.h"
#include "greedy/dijkstra.h"
#include "greedy/huffman.h"
#include "greedy/kruskal.h"
#include "greedy/matching.h"
#include "greedy/prim.h"
#include "greedy/sort.h"
#include "greedy/tsp.h"
#include "workload/graph_gen.h"
#include "workload/relation_gen.h"
#include "workload/text_gen.h"

namespace gdlog {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string ProgramPath(const std::string& name) {
  return std::string(GDLOG_SOURCE_DIR) + "/programs/" + name;
}

/// The full model as ordered text: every predicate mentioned by the
/// program, tuples in relation insertion order. Captures not just the
/// fact set but the order the engine derived it in — the bit-identity
/// contract of EvalOptions::threads.
std::vector<std::string> DumpModel(const Engine& e) {
  std::vector<std::string> lines;
  for (const auto& ref : e.program()->AllPredicates()) {
    for (const auto& tuple : e.Query(ref.name, ref.arity)) {
      std::string line = ref.name;
      line += '(';
      for (size_t i = 0; i < tuple.size(); ++i) {
        if (i) line += ',';
        line += e.store().ToString(tuple[i]);
      }
      line += ')';
      lines.push_back(std::move(line));
    }
  }
  return lines;
}

EngineOptions Threaded(uint32_t threads) {
  EngineOptions opts;
  opts.eval.threads = threads;
  // Force leading-scan partitioning even on the tiny shipped examples.
  opts.eval.parallel_min_rows = 2;
  return opts;
}

std::vector<std::string> RunProgram(const std::string& text,
                                    uint32_t threads) {
  Engine e(Threaded(threads));
  auto load = e.LoadProgram(text);
  EXPECT_TRUE(load.ok()) << load.ToString();
  auto run = e.Run();
  EXPECT_TRUE(run.ok()) << run.ToString();
  EXPECT_GE(e.stats()->threads_used, 1u);
  return DumpModel(e);
}

class ProgramDifferential : public ::testing::TestWithParam<const char*> {};

TEST_P(ProgramDifferential, ParallelModelBitIdenticalToSerial) {
  const std::string text = ReadFileOrDie(ProgramPath(GetParam()));
  const std::vector<std::string> serial = RunProgram(text, 1);
  ASSERT_FALSE(serial.empty());
  for (uint32_t threads : {2u, 8u}) {
    EXPECT_EQ(RunProgram(text, threads), serial)
        << GetParam() << " diverged at threads=" << threads;
  }
}

TEST_P(ProgramDifferential, PlannerPreservesTheModel) {
  const std::string text = ReadFileOrDie(ProgramPath(GetParam()));
  EngineOptions unplanned;
  unplanned.eval.use_join_planner = false;
  Engine e(unplanned);
  ASSERT_TRUE(e.LoadProgram(text).ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(DumpModel(e), RunProgram(text, 1)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Programs, ProgramDifferential,
                         ::testing::Values("course_assignment.dl",
                                           "huffman.dl", "kruskal.dl",
                                           "prim.dl", "sort.dl"));

// -- Cross-backend fleet: bytecode VM vs interpreter oracle -------------
//
// The interpreter is the semantics oracle for the VM: for every shipped
// program, every combination of backend × threads × join-planner ×
// provenance must produce the serial interpreter's model bit-identically
// (same tuples, same insertion order), and with provenance on, the
// choice-audit trails must pick the same winners for the same reasons.

EngineOptions BackendOpts(EvalBackend backend, uint32_t threads, bool planner,
                          bool provenance) {
  EngineOptions opts;
  opts.eval.backend = backend;
  opts.eval.threads = threads;
  opts.eval.parallel_min_rows = 2;  // partition even the tiny examples
  opts.eval.use_join_planner = planner;
  opts.provenance = provenance;
  return opts;
}

class BackendDifferential : public ::testing::TestWithParam<const char*> {};

TEST_P(BackendDifferential, VmModelBitIdenticalToInterpreterEverywhere) {
  const std::string text = ReadFileOrDie(ProgramPath(GetParam()));
  Engine oracle(BackendOpts(EvalBackend::kInterp, 1, true, false));
  ASSERT_TRUE(oracle.LoadProgram(text).ok());
  ASSERT_TRUE(oracle.Run().ok());
  EXPECT_EQ(oracle.VmCoverage(), nullptr) << "interp run reported VM coverage";
  const std::vector<std::string> expected = DumpModel(oracle);
  ASSERT_FALSE(expected.empty());
  for (uint32_t threads : {1u, 8u}) {
    for (bool planner : {true, false}) {
      for (bool provenance : {false, true}) {
        const auto label = [&](const char* backend) {
          std::ostringstream os;
          os << GetParam() << " backend=" << backend << " threads=" << threads
             << " planner=" << planner << " provenance=" << provenance;
          return os.str();
        };
        Engine interp(
            BackendOpts(EvalBackend::kInterp, threads, planner, provenance));
        ASSERT_TRUE(interp.LoadProgram(text).ok());
        ASSERT_TRUE(interp.Run().ok());
        EXPECT_EQ(DumpModel(interp), expected) << label("interp");

        Engine vm(BackendOpts(EvalBackend::kVm, threads, planner, provenance));
        ASSERT_TRUE(vm.LoadProgram(text).ok());
        ASSERT_TRUE(vm.Run().ok());
        EXPECT_EQ(DumpModel(vm), expected) << label("vm");
        // The sweep must actually exercise the bytecode: a lowering
        // regression that rejected every rule would silently turn this
        // fleet into interp-vs-interp.
        ASSERT_NE(vm.VmCoverage(), nullptr) << label("vm");
        EXPECT_GT(vm.VmCoverage()->rules_lowered, 0u) << label("vm");
      }
    }
  }
}

TEST_P(BackendDifferential, ChoiceAuditWinnersMatchInterpreter) {
  const std::string text = ReadFileOrDie(ProgramPath(GetParam()));
  Engine interp(BackendOpts(EvalBackend::kInterp, 1, true, true));
  ASSERT_TRUE(interp.LoadProgram(text).ok());
  ASSERT_TRUE(interp.Run().ok());
  auto expected = interp.ChoiceAuditText();
  ASSERT_TRUE(expected.ok());
  for (uint32_t threads : {1u, 8u}) {
    Engine vm(BackendOpts(EvalBackend::kVm, threads, true, true));
    ASSERT_TRUE(vm.LoadProgram(text).ok());
    ASSERT_TRUE(vm.Run().ok());
    auto got = vm.ChoiceAuditText();
    ASSERT_TRUE(got.ok());
    // Full-text equality: same firings in the same order, same winners,
    // same candidate-set sizes, pops, ties and rejection tallies — the
    // VM must not merely reach the same model but make the same
    // decisions for the same reasons.
    EXPECT_EQ(*got, *expected)
        << GetParam() << " audit diverged at threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, BackendDifferential,
                         ::testing::Values("course_assignment.dl",
                                           "huffman.dl", "kruskal.dl",
                                           "prim.dl", "sort.dl"));

TEST(BackendFallback, RejectedRulesFallBackToInterpreterAndAgree) {
  // Mixed programs: one rule trips a lowering limit (nested negated
  // conjunction / literal cap) and must keep interpreting, while its
  // neighbors run on the VM — one engine, both executors, one model.
  for (const char* name :
       {"vm_reject_nested_not.dl", "vm_reject_wide_rule.dl"}) {
    const std::string text = ReadFileOrDie(std::string(GDLOG_SOURCE_DIR) +
                                           "/tests/fixtures/" + name);
    Engine interp(BackendOpts(EvalBackend::kInterp, 1, true, false));
    ASSERT_TRUE(interp.LoadProgram(text).ok()) << name;
    ASSERT_TRUE(interp.Run().ok()) << name;
    Engine vm(BackendOpts(EvalBackend::kVm, 1, true, false));
    ASSERT_TRUE(vm.LoadProgram(text).ok()) << name;
    ASSERT_TRUE(vm.Run().ok()) << name;
    EXPECT_EQ(DumpModel(vm), DumpModel(interp)) << name;
    ASSERT_NE(vm.VmCoverage(), nullptr) << name;
    EXPECT_FALSE(vm.VmCoverage()->rejections.empty())
        << name << " no longer trips the lowering limit it documents";
    EXPECT_GT(vm.VmCoverage()->rules_lowered, 0u) << name;
    EXPECT_LT(vm.VmCoverage()->rules_lowered, vm.VmCoverage()->rules_total)
        << name;
  }
}

// -- Greedy wrappers vs procedural baselines, across thread counts ------

class ThreadSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ThreadSweep, PrimCostEqualsBaseline) {
  GraphGenOptions opts;
  opts.seed = 17;
  const Graph g = ConnectedRandomGraph(30, 60, opts);
  auto r = PrimMst(g, 0, Threaded(GetParam()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->total_cost, BaselinePrim(g, 0).total_cost);
}

TEST_P(ThreadSweep, KruskalCostEqualsBaseline) {
  GraphGenOptions opts;
  opts.seed = 23;
  const Graph g = ConnectedRandomGraph(20, 40, opts);
  auto r = KruskalMst(g, Threaded(GetParam()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->total_cost, BaselineKruskal(g).total_cost);
}

TEST_P(ThreadSweep, DijkstraDistancesEqualBaseline) {
  GraphGenOptions opts;
  opts.seed = 31;
  const Graph g = ConnectedRandomGraph(25, 70, opts);
  auto r = DijkstraSssp(g, 0, Threaded(GetParam()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::vector<int64_t> base = BaselineDijkstra(g, 0);
  ASSERT_EQ(r->settled.size(), g.num_nodes);
  for (const SettledNode& s : r->settled) {
    EXPECT_EQ(s.distance, base[static_cast<size_t>(s.node)])
        << "node " << s.node;
  }
}

TEST_P(ThreadSweep, HuffmanCostEqualsBaseline) {
  TextGenOptions opts;
  opts.seed = 11;
  const auto freqs = ZipfLetterFrequencies(10, opts);
  auto r = HuffmanTree(freqs, Threaded(GetParam()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->total_cost, BaselineHuffman(freqs).total_cost);
}

TEST_P(ThreadSweep, MatchingCostEqualsBaseline) {
  GraphGenOptions opts;
  opts.seed = 41;
  const Graph g = BipartiteGraph(12, 12, 60, opts);
  auto r = GreedyMatching(g, Threaded(GetParam()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->total_cost, BaselineGreedyMatching(g).total_cost);
}

TEST_P(ThreadSweep, SortEqualsHeapSort) {
  RelationGenOptions opts;
  opts.seed = 53;
  const auto tuples = RandomCostedRelation(120, opts);
  auto r = SortRelation(tuples, Threaded(GetParam()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->sorted, BaselineHeapSort(tuples));
}

TEST_P(ThreadSweep, TspCostEqualsBaseline) {
  GraphGenOptions opts;
  opts.seed = 61;
  const Graph g = CompleteGraph(9, opts);
  auto r = GreedyTspChain(g, Threaded(GetParam()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->total_cost, BaselineGreedyTsp(g).total_cost);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep, ::testing::Values(1u, 2u, 8u));

// -- Thread-count invariance of whole runs over random instances --------

TEST(DifferentialParallel, PrimModelIdenticalAcrossThreadCounts) {
  GraphGenOptions opts;
  opts.seed = 77;
  const Graph g = ConnectedRandomGraph(40, 90, opts);
  auto serial = PrimMst(g, 0, Threaded(1));
  ASSERT_TRUE(serial.ok());
  const auto expected = DumpModel(*serial->engine);
  for (uint32_t threads : {2u, 8u}) {
    auto r = PrimMst(g, 0, Threaded(threads));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(DumpModel(*r->engine), expected) << "threads=" << threads;
  }
}

TEST(DifferentialParallel, ParallelWorkActuallyHappened) {
  // Guard against the sweep silently degrading to all-serial: a chain TC
  // at threads=8 with a tiny partition floor must push work through the
  // pool.
  Engine e(Threaded(8));
  ASSERT_TRUE(e.LoadProgram(R"(
    tc(X, Y) <- edge(X, Y).
    tc(X, Z) <- tc(X, Y), edge(Y, Z).
  )").ok());
  for (int i = 0; i + 1 < 64; ++i) {
    ASSERT_TRUE(e.AddFact("edge", {Value::Int(i), Value::Int(i + 1)}).ok());
  }
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.stats()->threads_used, 8u);
  EXPECT_GT(e.stats()->parallel_apps, 0u);
  EXPECT_GT(e.stats()->parallel_tasks, e.stats()->parallel_apps)
      << "no delta scan was ever partitioned";
  EXPECT_EQ(e.Query("tc", 2).size(), 64u * 63u / 2u);
}

TEST(DifferentialParallel, ThreadsZeroResolvesToHardwareConcurrency) {
  Engine e(Threaded(0));
  ASSERT_TRUE(e.LoadProgram("p(X) <- q(X).").ok());
  ASSERT_TRUE(e.AddFact("q", {Value::Int(1)}).ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.stats()->threads_used, ThreadPool::HardwareThreads());
}

}  // namespace
}  // namespace gdlog
