// Concurrency tests for the lock-free observability primitives: eight
// threads hammer the same counters, histograms, and flight-recorder ring
// while a reader snapshots, then the exact final counts are asserted (no
// lost updates) and the text exports must still parse. Run under
// ThreadSanitizer in CI (GDLOG_SANITIZE=thread) to prove the relaxed
// atomics are race-free, not just lucky.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace gdlog {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 10000;

TEST(ObsConcurrency, CountersLoseNoUpdates) {
  MetricsRegistry reg;
  Counter* shared = reg.GetCounter("shared");
  Gauge* high = reg.GetGauge("high_water");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Mix shared-handle adds with registration races on the same key.
      Counter* mine = reg.GetCounter("shared");
      for (int i = 0; i < kOpsPerThread; ++i) {
        (i % 2 ? shared : mine)->Add(1);
        high->SetMax(t * kOpsPerThread + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(shared->value(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(high->value(), (kThreads - 1) * kOpsPerThread +
                               (kOpsPerThread - 1));
}

TEST(ObsConcurrency, HistogramCountSumMinMaxAreExact) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("lat");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Every thread records the same multiset {1..kOps}, shifted into
        // different octaves so many distinct buckets are hit.
        h->Record(static_cast<uint64_t>(i + 1) << (t % 4));
      }
    });
  }
  // Concurrent readers: quantiles and snapshots while writers run.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)h->Quantile(0.99);
      (void)reg.Snapshot();
    }
  });
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const uint64_t n = static_cast<uint64_t>(kThreads) * kOpsPerThread;
  EXPECT_EQ(h->count(), n);
  EXPECT_EQ(h->min(), 1u);
  EXPECT_EQ(h->max(), static_cast<uint64_t>(kOpsPerThread) << 3);
  // Sum: two threads per shift s in {0,1,2,3}, each contributing
  // (1+...+kOps) << s.
  const uint64_t base =
      static_cast<uint64_t>(kOpsPerThread) * (kOpsPerThread + 1) / 2;
  const uint64_t want = 2 * (base + (base << 1) + (base << 2) + (base << 3));
  EXPECT_EQ(h->sum(), want);
  // Bucket counts must total the observation count exactly.
  uint64_t bucket_total = 0;
  for (const auto& b : h->NonZeroBuckets()) bucket_total += b.count;
  EXPECT_EQ(bucket_total, n);
}

TEST(ObsConcurrency, SnapshotsStayParseableUnderFire) {
  MetricsRegistry reg;
  // Registered up front so the exports are non-empty even if the first
  // snapshot beats every writer thread to the registry.
  reg.GetCounter("warmup")->Add(1);
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Counter* c =
          reg.GetCounter("per_thread", {{"t", std::to_string(t)}});
      Histogram* h = reg.GetHistogram("lat");
      for (int i = 0; i < kOpsPerThread; ++i) {
        c->Add(1);
        h->Record(i);
      }
    });
  }
  // Snapshot while the writers are (very likely) still running; the
  // exports must parse regardless of how the race interleaves.
  for (int i = 0; i < 20; ++i) {
    auto doc = ParseJson(reg.SnapshotJson());
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    ASSERT_FALSE(reg.PrometheusText().empty());
  }
  for (auto& th : writers) th.join();
  // Final state: every per-thread counter holds exactly its own writes.
  for (int t = 0; t < kThreads; ++t) {
    const Counter* c =
        reg.FindCounter("per_thread", {{"t", std::to_string(t)}});
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value(), static_cast<uint64_t>(kOpsPerThread));
  }
}

TEST(ObsConcurrency, FlightRecorderSurvivesWriterStorm) {
  FlightRecorder rec(/*capacity=*/64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        rec.Record(FlightEventKind::kRoundStart, t, i);
      }
    });
  }
  // Dump concurrently: lapped slots are skipped, never torn into
  // nonsense kinds, and the call must not crash.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto events = rec.Snapshot();
      for (const auto& ev : events) {
        ASSERT_EQ(ev.kind, FlightEventKind::kRoundStart);
        ASSERT_GE(ev.a0, 0);
        ASSERT_LT(ev.a0, kThreads);
      }
      (void)rec.DumpText();
    }
  });
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(rec.recorded(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  const auto events = rec.Snapshot();
  EXPECT_EQ(events.size(), rec.capacity());
  // Retained events are in strictly increasing sequence order.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
}

}  // namespace
}  // namespace gdlog
