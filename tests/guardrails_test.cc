// Execution guardrails: every RunLimits cap, cooperative cancellation,
// graceful OOM, the deterministic fault injector, and the termination
// section of the run report. The common fixture is a runaway program —
// one new tuple per saturation round, effectively unbounded — that only
// a guardrail can stop.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>

#include "analysis/diagnostics.h"
#include "api/engine.h"
#include "common/guardrails.h"

namespace gdlog {
namespace {

constexpr const char* kRunaway = R"(
  c(0).
  c(M) <- c(N), M = N + 1, N < 2000000000.
)";

// One stage per p fact: the paper's declarative sort (Example 5).
constexpr const char* kStaged = R"(
  sp(nil, 0, 0).
  sp(X, C, I) <- next(I), p(X, C), least(C, I).
)";

std::unique_ptr<Engine> MakeRunaway(RunLimits limits,
                                    std::string faults = "") {
  EngineOptions options;
  options.limits = limits;
  options.faults = std::move(faults);
  auto engine = std::make_unique<Engine>(options);
  EXPECT_TRUE(engine->LoadProgram(kRunaway).ok());
  return engine;
}

// Eight independent runaway chains: every round's delta has eight rows,
// so a low parallel_min_rows keeps the worker pool genuinely busy while
// a guardrail has to stop the run.
constexpr const char* kWideRunaway = R"(
  c(0, 0). c(1, 0). c(2, 0). c(3, 0).
  c(4, 0). c(5, 0). c(6, 0). c(7, 0).
  c(K, M) <- c(K, N), M = N + 1, N < 2000000000.
)";

std::unique_ptr<Engine> MakeParallelRunaway(RunLimits limits,
                                            std::string faults = "") {
  EngineOptions options;
  options.limits = limits;
  options.faults = std::move(faults);
  options.eval.threads = 8;
  options.eval.parallel_min_rows = 2;
  auto engine = std::make_unique<Engine>(options);
  EXPECT_TRUE(engine->LoadProgram(kWideRunaway).ok());
  return engine;
}

// ---------------------------------------------------------------------------
// Unit: FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjector, ParsesSpecAndFiresOnce) {
  auto inj = FaultInjector::Parse("alloc@3,parse");
  ASSERT_TRUE(inj.ok());
  EXPECT_TRUE(inj->ArmedFor(FaultInjector::kAlloc));
  EXPECT_TRUE(inj->ArmedFor(FaultInjector::kParse));
  EXPECT_FALSE(inj->ArmedFor(FaultInjector::kCompile));
  // alloc fires on the 3rd hit, exactly once.
  EXPECT_FALSE(inj->Hit(FaultInjector::kAlloc));
  EXPECT_FALSE(inj->Hit(FaultInjector::kAlloc));
  EXPECT_TRUE(inj->Hit(FaultInjector::kAlloc));
  EXPECT_FALSE(inj->Hit(FaultInjector::kAlloc));
  EXPECT_EQ(inj->hits(FaultInjector::kAlloc), 4u);
  // parse defaults to the first hit.
  EXPECT_TRUE(inj->Hit(FaultInjector::kParse));
}

TEST(FaultInjector, RejectsBadSpecs) {
  EXPECT_FALSE(FaultInjector::Parse("no-such-probe").ok());
  EXPECT_FALSE(FaultInjector::Parse("alloc@0").ok());
  EXPECT_FALSE(FaultInjector::Parse("alloc@x").ok());
  EXPECT_FALSE(FaultInjector::Parse(",").ok());
  EXPECT_FALSE(FaultInjector::Parse("").ok());
}

TEST(FaultInjector, CatalogCoversEveryNamedProbe) {
  const auto& catalog = FaultInjector::ProbeCatalog();
  for (std::string_view probe :
       {FaultInjector::kParse, FaultInjector::kAnalyze, FaultInjector::kCompile,
        FaultInjector::kEvalSaturate, FaultInjector::kEvalGamma,
        FaultInjector::kAlloc, FaultInjector::kDeadline}) {
    EXPECT_NE(std::find(catalog.begin(), catalog.end(), probe), catalog.end())
        << probe;
  }
}

// ---------------------------------------------------------------------------
// Unit: MemoryBudget
// ---------------------------------------------------------------------------

TEST(MemoryBudget, TracksChargesAndPeak) {
  MemoryBudget budget;
  size_t a = 0, b = 0;
  budget.Update(&a, 1000);
  budget.Update(&b, 500);
  EXPECT_EQ(budget.used(), 1500u);
  EXPECT_EQ(budget.peak(), 1500u);
  budget.Update(&a, 200);  // shrink
  EXPECT_EQ(budget.used(), 700u);
  EXPECT_EQ(budget.peak(), 1500u);
  EXPECT_EQ(a, 200u);
  budget.Update(&a, 0);
  budget.Update(&b, 0);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryBudget, AllocProbeThrowsBadAllocOnGrowth) {
  auto inj = FaultInjector::Parse("alloc@2");
  ASSERT_TRUE(inj.ok());
  MemoryBudget budget;
  budget.set_fault_injector(&*inj);
  size_t charged = 0;
  budget.Update(&charged, 100);                       // hit 1
  EXPECT_THROW(budget.Update(&charged, 200), std::bad_alloc);  // hit 2
  budget.Update(&charged, 50);  // shrink never hits the probe
}

// ---------------------------------------------------------------------------
// Limits
// ---------------------------------------------------------------------------

TEST(Guardrails, DeadlineStopsRunawayRun) {
  RunLimits limits;
  limits.deadline_ms = 100;
  auto engine = MakeRunaway(limits);
  const Status st = engine->Run();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  EXPECT_EQ(DiagCodeOfStatus(st), diag::kDeadlineExceeded);
  EXPECT_EQ(engine->outcome().reason, TerminationReason::kDeadline);
  // The partial state is queryable.
  EXPECT_TRUE(engine->has_run());
  EXPECT_GT(engine->Query("c", 1).size(), 0u);
}

TEST(Guardrails, TupleLimitStopsRunawayRun) {
  RunLimits limits;
  limits.max_tuples = 1000;
  auto engine = MakeRunaway(limits);
  const Status st = engine->Run();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_EQ(DiagCodeOfStatus(st), diag::kTupleLimit);
  EXPECT_EQ(engine->outcome().reason, TerminationReason::kTupleLimit);
  // Checks happen at round boundaries, so the cap may overshoot by at
  // most one round's production — here one tuple per round.
  const size_t n = engine->Query("c", 1).size();
  EXPECT_GE(n, 1000u);
  EXPECT_LE(n, 1100u);
}

TEST(Guardrails, IterationLimitStopsRunawayRun) {
  RunLimits limits;
  limits.max_iterations = 10;
  auto engine = MakeRunaway(limits);
  const Status st = engine->Run();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_EQ(DiagCodeOfStatus(st), diag::kIterationLimit);
  EXPECT_EQ(engine->outcome().reason, TerminationReason::kIterationLimit);
  EXPECT_LE(engine->stats()->saturation_rounds, 11u);
}

TEST(Guardrails, MemoryBudgetStopsRunawayRun) {
  RunLimits limits;
  limits.max_memory_bytes = 1 << 20;
  auto engine = MakeRunaway(limits);
  const Status st = engine->Run();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_EQ(DiagCodeOfStatus(st), diag::kMemoryLimit);
  EXPECT_EQ(engine->outcome().reason, TerminationReason::kMemoryLimit);
  EXPECT_GE(engine->outcome().peak_memory_bytes, 1u << 20);
  EXPECT_GT(engine->Query("c", 1).size(), 0u);
}

TEST(Guardrails, StageLimitStopsStagedProgram) {
  RunLimits limits;
  limits.max_stages = 5;
  EngineOptions options;
  options.limits = limits;
  Engine engine(options);
  ASSERT_TRUE(engine.LoadProgram(kStaged).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        engine.AddFact("p", {engine.Sym("e" + std::to_string(i)),
                             engine.Int(i)}).ok());
  }
  const Status st = engine.Run();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_EQ(DiagCodeOfStatus(st), diag::kStageLimit);
  EXPECT_EQ(engine.outcome().reason, TerminationReason::kStageLimit);
  // Stages checked at gamma boundaries: at most one extra firing.
  EXPECT_LE(engine.stats()->stages_assigned, 6u);
}

TEST(Guardrails, UnlimitedRunStillCompletes) {
  // Sanity: guardrail plumbing must not perturb a normal bounded program.
  EngineOptions options;
  options.limits.deadline_ms = 60000;
  options.limits.max_tuples = 1000000;
  Engine engine(options);
  ASSERT_TRUE(engine.LoadProgram("c(0). c(M) <- c(N), M = N + 1, N < 50.")
                  .ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.outcome().reason, TerminationReason::kCompleted);
  EXPECT_EQ(engine.Query("c", 1).size(), 51u);
  EXPECT_GT(engine.outcome().guard_checks, 0u);
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST(Guardrails, CancelFromSecondThreadStopsRun) {
  auto engine = MakeRunaway(RunLimits{});
  std::thread canceller([&engine] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    engine->RequestCancel();
  });
  const Status st = engine->Run();
  canceller.join();
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st.ToString();
  EXPECT_EQ(DiagCodeOfStatus(st), diag::kRunCancelled);
  EXPECT_EQ(engine->outcome().reason, TerminationReason::kCancelled);
  EXPECT_TRUE(engine->has_run());
  EXPECT_GT(engine->Query("c", 1).size(), 0u);
}

// ---------------------------------------------------------------------------
// OOM and fault injection
// ---------------------------------------------------------------------------

TEST(Guardrails, InjectedAllocFailureIsGracefulOom) {
  // The alloc probe counts *growth events* (capacity changes), which are
  // logarithmic in data size — keep the trigger small so it fires early.
  // The deadline is only a hang backstop and must stay far above the
  // probe's trigger time even under TSan's ~30x slowdown.
  RunLimits backstop;
  backstop.deadline_ms = 180000;
  auto engine = MakeRunaway(backstop, "alloc@40");
  const Status st = engine->Run();
  EXPECT_EQ(st.code(), StatusCode::kOutOfMemory) << st.ToString();
  EXPECT_EQ(DiagCodeOfStatus(st), diag::kOutOfMemory);
  EXPECT_EQ(engine->outcome().reason, TerminationReason::kOom);
  // Graceful: the partial state survived the unwound allocation.
  EXPECT_TRUE(engine->has_run());
  (void)engine->Query("c", 1);
  EXPECT_TRUE(engine->RunReport().ok());
}

// ---------------------------------------------------------------------------
// Guardrails x parallel evaluation (threads = 8)
// ---------------------------------------------------------------------------

TEST(Guardrails, ParallelRunawayHonorsDeadline) {
  RunLimits limits;
  limits.deadline_ms = 100;
  auto engine = MakeParallelRunaway(limits);
  const Status st = engine->Run();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  EXPECT_EQ(engine->outcome().reason, TerminationReason::kDeadline);
  EXPECT_TRUE(engine->has_run());
  EXPECT_GT(engine->Query("c", 2).size(), 0u);
  // The stop happened while the pool was actually in use.
  EXPECT_EQ(engine->stats()->threads_used, 8u);
  EXPECT_GT(engine->stats()->parallel_apps, 0u);
}

TEST(Guardrails, ParallelRunawayHonorsTupleLimit) {
  RunLimits limits;
  limits.max_tuples = 1000;
  auto engine = MakeParallelRunaway(limits);
  const Status st = engine->Run();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_EQ(engine->outcome().reason, TerminationReason::kTupleLimit);
  // Round-boundary checks may overshoot by one round's production —
  // eight tuples per round here.
  const size_t n = engine->Query("c", 2).size();
  EXPECT_GE(n, 1000u);
  EXPECT_LE(n, 1200u);
}

TEST(Guardrails, ParallelRunawayHonorsCancel) {
  auto engine = MakeParallelRunaway(RunLimits{});
  std::thread canceller([&engine] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    engine->RequestCancel();
  });
  const Status st = engine->Run();
  canceller.join();
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st.ToString();
  EXPECT_EQ(engine->outcome().reason, TerminationReason::kCancelled);
  EXPECT_TRUE(engine->has_run());
  EXPECT_GT(engine->Query("c", 2).size(), 0u);
}

TEST(Guardrails, ParallelInjectedAllocFailureIsGracefulOom) {
  // Worker capture buffers are charged to the MemoryBudget from pool
  // threads, so the alloc probe can fire off the main thread; the
  // injector's counters are atomic for exactly this case. Same hang
  // backstop reasoning as the serial variant above.
  RunLimits backstop;
  backstop.deadline_ms = 180000;
  auto engine = MakeParallelRunaway(backstop, "alloc@40");
  const Status st = engine->Run();
  EXPECT_EQ(st.code(), StatusCode::kOutOfMemory) << st.ToString();
  EXPECT_EQ(engine->outcome().reason, TerminationReason::kOom);
  EXPECT_TRUE(engine->has_run());
  (void)engine->Query("c", 2);
  EXPECT_TRUE(engine->RunReport().ok());
}

TEST(Guardrails, MalformedFaultSpecFailsLoad) {
  EngineOptions options;
  options.faults = "bogus-probe";
  Engine engine(options);
  const Status st = engine.LoadProgram(kRunaway);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
}

TEST(Guardrails, FaultSweepNeverCrashesTheEngine) {
  // Chaos sweep: arm every probe in the catalog, one engine each, over a
  // small valid program. Each run must end in a Status — never a crash —
  // and the engine object must stay destructible/usable.
  for (std::string_view probe : FaultInjector::ProbeCatalog()) {
    EngineOptions options;
    options.faults = std::string(probe);
    options.limits.deadline_ms = 10000;  // backstop, not the subject
    Engine engine(options);
    const Status load =
        engine.LoadProgram("c(0). c(M) <- c(N), M = N + 1, N < 100.");
    if (!load.ok()) {
      // parse/analyze probes fail the load with GD207; the alloc probe
      // can fire during parse-time interning, which is a graceful OOM.
      if (probe == FaultInjector::kAlloc) {
        EXPECT_EQ(load.code(), StatusCode::kOutOfMemory) << probe;
      } else {
        EXPECT_EQ(DiagCodeOfStatus(load), diag::kInjectedFault) << probe;
      }
      continue;
    }
    const Status run = engine.Run();
    const bool durability_probe =
        probe == FaultInjector::kWalAppend ||
        probe == FaultInjector::kWalFsync ||
        probe == FaultInjector::kCheckpointWrite ||
        probe == FaultInjector::kRecoveryReplay;
    if (durability_probe) {
      // Inert on an in-memory engine — the durable paths never execute.
      // durability_test.cc sweeps their failure modes; here an armed
      // probe must simply not perturb a normal run.
      EXPECT_TRUE(run.ok()) << probe;
    } else if (probe == FaultInjector::kAlloc) {
      EXPECT_EQ(run.code(), StatusCode::kOutOfMemory) << probe;
    } else if (probe == FaultInjector::kDeadline) {
      EXPECT_EQ(run.code(), StatusCode::kDeadlineExceeded) << probe;
    } else {
      EXPECT_FALSE(run.ok()) << probe;
      EXPECT_EQ(DiagCodeOfStatus(run), diag::kInjectedFault) << probe;
    }
    if (engine.has_run()) {
      (void)engine.Query("c", 1);
      EXPECT_TRUE(engine.RunReport().ok()) << probe;
    }
  }
}

TEST(Guardrails, EnvVarArmsInjector) {
  setenv("GDLOG_FAULTS", "parse", 1);
  Engine engine;
  const Status st = engine.LoadProgram("c(0).");
  unsetenv("GDLOG_FAULTS");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(DiagCodeOfStatus(st), diag::kInjectedFault);
}

// ---------------------------------------------------------------------------
// Run report
// ---------------------------------------------------------------------------

TEST(Guardrails, RunReportCarriesTerminationSection) {
  RunLimits limits;
  limits.max_tuples = 100;
  auto engine = MakeRunaway(limits);
  EXPECT_FALSE(engine->Run().ok());
  auto report = engine->RunReport();
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("\"termination\""), std::string::npos);
  EXPECT_NE(report->find("\"reason\":\"tuple-limit\""), std::string::npos)
      << *report;
  EXPECT_NE(report->find("[GD201]"), std::string::npos);
  EXPECT_NE(report->find("\"peak_memory_bytes\""), std::string::npos);
  EXPECT_NE(report->find("\"max_tuples\":100"), std::string::npos);
}

TEST(Guardrails, CompletedRunReportsCompleted) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("c(0). c(M) <- c(N), M = N + 1, N < 10.")
                  .ok());
  ASSERT_TRUE(engine.Run().ok());
  auto report = engine.RunReport();
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("\"reason\":\"completed\""), std::string::npos);
  // Memory tracking is always on; a completed run still reports a peak.
  EXPECT_GT(engine.outcome().peak_memory_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Converted abort paths (satellite: no user-reachable LOG(FATAL)/CHECK)
// ---------------------------------------------------------------------------

TEST(Guardrails, ArithmeticOverflowFailsTheMatchNotTheProcess) {
  Engine engine;
  // kMaxInt squared overflows both int64 and the 61-bit payload; the
  // body term must simply not match.
  ASSERT_TRUE(engine
                  .LoadProgram("big(1152921504606846975)."
                               "r(X) <- big(A), X = A * A."
                               "s(X) <- big(A), X = A + 1.")
                  .ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.Query("r", 1).size(), 0u);
  EXPECT_EQ(engine.Query("s", 1).size(), 0u);
}

TEST(Guardrails, HugeIntegerLiteralIsAParseError) {
  Engine engine;
  // In int64 range but outside Value's 61-bit inline-int payload.
  const Status st = engine.LoadProgram("c(4611686018427387904).");
  EXPECT_EQ(st.code(), StatusCode::kParseError) << st.ToString();
  EXPECT_EQ(DiagCodeOfStatus(st), diag::kIntLiteralRange);
  // The boundary literal still parses.
  Engine ok_engine;
  EXPECT_TRUE(ok_engine.LoadProgram("c(1152921504606846975).").ok());
}

TEST(Guardrails, TerminationReasonNamesAreStable) {
  EXPECT_EQ(TerminationReasonName(TerminationReason::kCompleted), "completed");
  EXPECT_EQ(TerminationReasonName(TerminationReason::kDeadline), "deadline");
  EXPECT_EQ(TerminationReasonName(TerminationReason::kTupleLimit),
            "tuple-limit");
  EXPECT_EQ(TerminationReasonName(TerminationReason::kStageLimit),
            "stage-limit");
  EXPECT_EQ(TerminationReasonName(TerminationReason::kIterationLimit),
            "iteration-limit");
  EXPECT_EQ(TerminationReasonName(TerminationReason::kMemoryLimit),
            "memory-limit");
  EXPECT_EQ(TerminationReasonName(TerminationReason::kCancelled), "cancelled");
  EXPECT_EQ(TerminationReasonName(TerminationReason::kOom), "oom");
  EXPECT_EQ(TerminationReasonName(TerminationReason::kFault), "fault");
}

}  // namespace
}  // namespace gdlog
