// Unit tests for the compile-time diagnostics engine: one triggering and
// one non-triggering program per diagnostic code, the stratification
// cycle explanation, and the JSON emitter.
#include "analysis/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/absint/absint.h"
#include "analysis/dep_graph.h"
#include "analysis/diagnostics.h"
#include "analysis/rewriter.h"
#include "parser/parser.h"

namespace gdlog {
namespace {

LintResult Lint(const char* text, LintOptions options = {}) {
  ValueStore store;
  return LintSource(&store, text, std::move(options));
}

bool HasCode(const LintResult& r, std::string_view code) {
  return std::any_of(r.diagnostics.begin(), r.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic& FindCode(const LintResult& r, std::string_view code) {
  for (const Diagnostic& d : r.diagnostics) {
    if (d.code == code) return d;
  }
  ADD_FAILURE() << "no diagnostic with code " << code;
  static Diagnostic none;
  return none;
}

TEST(Lint, CleanProgramHasNoDiagnostics) {
  const LintResult r = Lint(R"(
    prm(nil, a, 0, 0).
    prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I,
                       least(C, I), choice(Y, X).
    new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
    g(a, b, 1).
  )");
  EXPECT_TRUE(r.clean());
  EXPECT_TRUE(r.diagnostics.empty())
      << RenderDiagnostics(r.diagnostics, "");
}

// -- GD001: unsafe head variable --------------------------------------------

TEST(Lint, GD001UnsafeHeadVariable) {
  const LintResult r = Lint("out(X, Y) <- e(X).\ne(1).\n");
  EXPECT_FALSE(r.clean());
  const Diagnostic& d = FindCode(r, diag::kUnsafeHeadVar);
  EXPECT_EQ(d.severity, DiagSeverity::kError);
  EXPECT_EQ(d.predicate, "out/2");
  EXPECT_EQ(d.rule_index, 0);
  EXPECT_NE(d.message.find("Y"), std::string::npos);
}

TEST(Lint, GD001NotFiredWhenHeadIsBound) {
  const LintResult r = Lint("out(X, Y) <- e(X, Y).\ne(1, 2).\n");
  EXPECT_FALSE(HasCode(r, diag::kUnsafeHeadVar));
}

TEST(Lint, GD001BindsThroughEqualityArithmetic) {
  // I = J + 1 binds I once J is bound; compound args bind their parts.
  const LintResult r = Lint(R"(
    out(I, X) <- e(t(X, _), J), I = J + 1.
    e(t(1, 2), 3).
  )");
  EXPECT_FALSE(HasCode(r, diag::kUnsafeHeadVar));
}

// -- GD002: unsafe variable in a negated or built-in goal -------------------

TEST(Lint, GD002UnsafeNegatedGoalVariable) {
  const LintResult r = Lint("p(X) <- q(X), not r(X, Z).\nq(1).\nr(1, 2).\n");
  const Diagnostic& d = FindCode(r, diag::kUnsafeBodyVar);
  EXPECT_EQ(d.severity, DiagSeverity::kError);
  EXPECT_NE(d.message.find("Z"), std::string::npos);
}

TEST(Lint, GD002NotFiredWhenNotExistsBindsLocally) {
  // Z is bound inside the NotExists conjunction by its own positive atom.
  const LintResult r = Lint(R"(
    p(X) <- q(X), not (r(X, Z), Z > 0).
    q(1).
    r(1, 2).
  )");
  EXPECT_FALSE(HasCode(r, diag::kUnsafeBodyVar));
}

// -- GD003: undefined predicate ---------------------------------------------

TEST(Lint, GD003UndefinedPredicate) {
  const LintResult r = Lint("p(X) <- q(X).\n");
  const Diagnostic& d = FindCode(r, diag::kUndefinedPredicate);
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_EQ(d.predicate, "q/1");
  EXPECT_TRUE(r.clean());  // warning, not error: EDB may arrive via AddFact
}

TEST(Lint, GD003NotFiredWhenDefinedByFact) {
  const LintResult r = Lint("p(X) <- q(X).\nq(1).\n");
  EXPECT_FALSE(HasCode(r, diag::kUndefinedPredicate));
}

// -- GD004: unused predicate ------------------------------------------------

TEST(Lint, GD004UnusedFactPredicate) {
  const LintResult r = Lint("p(X) <- e(X).\ne(1).\nq(7).\n");
  const Diagnostic& d = FindCode(r, diag::kUnusedPredicate);
  EXPECT_EQ(d.predicate, "q/1");
}

TEST(Lint, GD004NotFiredForRuleDefinedSinks) {
  // p is a rule-defined sink: presumed to be the query output.
  const LintResult r = Lint("p(X) <- e(X).\ne(1).\n");
  EXPECT_FALSE(HasCode(r, diag::kUnusedPredicate));
}

TEST(Lint, GD004FiredForNonRootSinksWhenRootsGiven) {
  LintOptions opts;
  opts.roots.push_back({"p", 1});
  const LintResult r =
      Lint("p(X) <- e(X).\nq(X) <- e(X).\ne(1).\n", opts);
  const Diagnostic& d = FindCode(r, diag::kUnusedPredicate);
  EXPECT_EQ(d.predicate, "q/1");
}

// -- GD005: arity mismatch --------------------------------------------------

TEST(Lint, GD005InconsistentArities) {
  const LintResult r = Lint(R"(
    p(X) <- q(X).
    p(X, Y) <- q(X), q(Y).
    out(X) <- p(X).
    out2(X) <- p(X, X).
    q(1).
  )");
  const Diagnostic& d = FindCode(r, diag::kArityMismatch);
  EXPECT_NE(d.message.find("p"), std::string::npos);
}

TEST(Lint, GD005NotFiredForConsistentArities) {
  const LintResult r = Lint("p(X) <- q(X).\nq(1).\n");
  EXPECT_FALSE(HasCode(r, diag::kArityMismatch));
}

// -- GD006 / GD007: choice hygiene ------------------------------------------

TEST(Lint, GD006DuplicateChoiceGoal) {
  const LintResult r = Lint(
      "p(X, Y) <- e(X, Y), choice(Y, X), choice(Y, X).\ne(1, 2).\n");
  EXPECT_TRUE(HasCode(r, diag::kDuplicateChoice));
}

TEST(Lint, GD006NotFiredForDistinctChoiceGoals) {
  const LintResult r = Lint(
      "p(X, Y) <- e(X, Y), choice(Y, X), choice(X, Y).\ne(1, 2).\n");
  EXPECT_FALSE(HasCode(r, diag::kDuplicateChoice));
}

TEST(Lint, GD007DegenerateChoiceSameVariableBothSides) {
  const LintResult r = Lint("p(X) <- e(X), choice(X, X).\ne(1).\n");
  EXPECT_TRUE(HasCode(r, diag::kDegenerateChoice));
}

TEST(Lint, GD007DegenerateChoiceConstantRight) {
  const LintResult r = Lint("p(X) <- e(X), choice(X, ()).\ne(1).\n");
  EXPECT_TRUE(HasCode(r, diag::kDegenerateChoice));
}

TEST(Lint, GD007NotFiredForRealFd) {
  const LintResult r = Lint(
      "p(X, Y) <- e(X, Y), choice(X, Y).\ne(1, 2).\n");
  EXPECT_FALSE(HasCode(r, diag::kDegenerateChoice));
}

// -- GD008: unbound extrema cost --------------------------------------------

TEST(Lint, GD008UnboundExtremaCost) {
  const LintResult r = Lint(R"(
    p(nil, 0).
    p(X, I) <- next(I), q(X), least(C, I).
    q(1).
  )");
  const Diagnostic& d = FindCode(r, diag::kUnboundExtremaCost);
  EXPECT_EQ(d.severity, DiagSeverity::kError);
  EXPECT_NE(d.message.find("C"), std::string::npos);
}

TEST(Lint, GD008NotFiredWhenCostBound) {
  const LintResult r = Lint(R"(
    p(nil, 0).
    p(X, I) <- next(I), q(X, C), least(C, I).
    q(1, 5).
  )");
  EXPECT_FALSE(HasCode(r, diag::kUnboundExtremaCost));
}

// -- GD009: not stage-stratified, with the cycle explained ------------------

TEST(Lint, GD009NonStratifiedNamesTheCycle) {
  const char* text = R"(
    p(X) <- q(X), not r(X).
    r(X) <- q(X), not p(X).
    q(1).
  )";
  const LintResult r = Lint(text);
  EXPECT_FALSE(r.clean());
  const Diagnostic& d = FindCode(r, diag::kNotStageStratified);
  ASSERT_FALSE(d.notes.empty());
  const std::string& cycle = d.notes[0];
  EXPECT_NE(cycle.find("dependency cycle:"), std::string::npos) << cycle;
  EXPECT_NE(cycle.find("p"), std::string::npos) << cycle;
  EXPECT_NE(cycle.find("r"), std::string::npos) << cycle;
  EXPECT_NE(cycle.find("~>"), std::string::npos) << cycle;  // negated edge

  // The reported cycle must match the known bad SCC {p/1, r/1}: every
  // edge of CycleWithin stays inside that SCC and chains back to start.
  ValueStore store;
  auto prog = ParseProgram(&store, text);
  ASSERT_TRUE(prog.ok());
  DependencyGraph g(*prog);
  const PredIndex p = g.Lookup("p", 1);
  const PredIndex rr = g.Lookup("r", 1);
  ASSERT_NE(p, kNoPred);
  ASSERT_NE(rr, kNoPred);
  const uint32_t scc = g.scc_of(p);
  ASSERT_EQ(scc, g.scc_of(rr));
  const std::vector<uint32_t> cyc = g.CycleWithin(scc);
  ASSERT_EQ(cyc.size(), 2u);  // p -> r -> p (or r -> p -> r)
  for (size_t i = 0; i < cyc.size(); ++i) {
    const DependencyGraph::Edge& e = g.edges()[cyc[i]];
    EXPECT_EQ(g.scc_of(e.from), scc);
    EXPECT_EQ(g.scc_of(e.to), scc);
    EXPECT_TRUE(e.negative);
    EXPECT_EQ(e.to, g.edges()[cyc[(i + 1) % cyc.size()]].from);
  }
}

TEST(Lint, GD009NotFiredForStageStratifiedRecursion) {
  const LintResult r = Lint(R"(
    prm(nil, a, 0, 0).
    prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I,
                       least(C, I), choice(Y, X).
    new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
    g(a, b, 1).
  )");
  EXPECT_FALSE(HasCode(r, diag::kNotStageStratified));
}

// -- GD010: unreachable rules -----------------------------------------------

TEST(Lint, GD010UnreachableRuleWithRoots) {
  LintOptions opts;
  opts.roots.push_back({"out", 1});
  const LintResult r = Lint(
      "out(X) <- a(X).\ndead(X) <- a(X).\na(1).\n", opts);
  const Diagnostic& d = FindCode(r, diag::kUnreachableRule);
  EXPECT_EQ(d.predicate, "dead/1");
}

TEST(Lint, GD010NotFiredWithoutRootsOrWhenReachable) {
  const LintResult no_roots =
      Lint("out(X) <- a(X).\ndead(X) <- a(X).\na(1).\n");
  EXPECT_FALSE(HasCode(no_roots, diag::kUnreachableRule));

  LintOptions opts;
  opts.roots.push_back({"out", 1});
  const LintResult reachable = Lint(
      "out(X) <- mid(X).\nmid(X) <- a(X).\na(1).\n", opts);
  EXPECT_FALSE(HasCode(reachable, diag::kUnreachableRule));
}

// -- GD011: relaxed flat-rule stratification --------------------------------

TEST(Lint, GD011RelaxedStratificationNote) {
  const LintResult r = Lint(R"(
    p(nil, 0).
    p(X, I) <- next(I), cand(X, J), J < I, choice((), X).
    cand(X, J) <- p(_, J), q(X), not blocked(X, J).
    blocked(X, J) <- p(X, J).
    q(1).
  )");
  const Diagnostic& d = FindCode(r, diag::kRelaxedStratification);
  EXPECT_EQ(d.severity, DiagSeverity::kNote);
  EXPECT_TRUE(r.clean());  // note, not error: Run() accepts this program
}

TEST(Lint, GD011NotFiredForStrictStageCliques) {
  const LintResult r = Lint(R"(
    sp(nil, 0, 0).
    sp(X, C, I) <- next(I), p(X, C), least(C, I).
    p(a, 1).
  )");
  EXPECT_FALSE(HasCode(r, diag::kRelaxedStratification));
}

// -- GD012 / GD013: abstract-interpretation lints ---------------------------
// These come from the abstract interpreter (analysis/absint), which
// Engine::Lint merges with the structural lints above; the helper runs
// it directly on the parsed program.

LintResult AbsintLint(const char* text) {
  ValueStore store;
  auto parsed = ParseProgram(&store, text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  const absint::AnalysisResult ar = absint::Analyze(*parsed);
  LintResult r;
  r.diagnostics = ar.diagnostics;
  r.counts = CountDiagnostics(r.diagnostics);
  return r;
}

TEST(Lint, GD012ProvablyEmptyRuleAndPredicate) {
  const LintResult r = AbsintLint(R"(
    a(1). a(2).
    dead(X) <- a(X), X > 5.
  )");
  const Diagnostic& d = FindCode(r, diag::kProvablyEmpty);
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  // Both the rule-level finding (with a location) and the whole-predicate
  // summary fire.
  int count = 0;
  bool rule_level = false, pred_level = false;
  for (const Diagnostic& it : r.diagnostics) {
    if (it.code != diag::kProvablyEmpty) continue;
    ++count;
    if (it.rule_index >= 0) rule_level = true;
    if (it.rule_index < 0) pred_level = true;
    EXPECT_EQ(it.predicate, "dead/1");
  }
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(rule_level);
  EXPECT_TRUE(pred_level);
}

TEST(Lint, GD012NotFiredForSatisfiableComparison) {
  const LintResult r = AbsintLint(R"(
    a(1). a(2).
    live(X) <- a(X), X > 1.
  )");
  EXPECT_FALSE(HasCode(r, diag::kProvablyEmpty));
}

TEST(Lint, GD012NotFiredForUnseededEdbPredicate) {
  // r/1 has no facts in the program text, but facts may arrive via
  // Engine::AddFact before Run — the analyzer must treat it as
  // unanalyzable, not provably empty, and not cascade into out/1.
  const LintResult r = AbsintLint(R"(
    out(X) <- r(X), X > 5.
  )");
  EXPECT_FALSE(HasCode(r, diag::kProvablyEmpty));
}

TEST(Lint, GD013GuaranteedOverflow) {
  const LintResult r = AbsintLint(R"(
    big(1152921504606846975).
    boom(Y) <- big(X), Y = X + 1.
  )");
  const Diagnostic& d = FindCode(r, diag::kGuaranteedOverflow);
  EXPECT_EQ(d.severity, DiagSeverity::kWarning);
  EXPECT_EQ(d.predicate, "boom/1");
  EXPECT_TRUE(d.loc.valid());
}

TEST(Lint, GD013NotFiredForInRangeArithmetic) {
  const LintResult r = AbsintLint(R"(
    big(1152921504606846975).
    ok(Y) <- big(X), Y = X - 1.
  )");
  EXPECT_FALSE(HasCode(r, diag::kGuaranteedOverflow));
}

TEST(Lint, GD013NotFiredWhenOnlySomeEvaluationsOverflow) {
  // X + X overflows for the largest row but not the smallest: the site
  // is not *guaranteed* to fail, so the warning must stay quiet.
  const LintResult r = AbsintLint(R"(
    n(1). n(1152921504606846975).
    d(Y) <- n(X), Y = X + X.
  )");
  EXPECT_FALSE(HasCode(r, diag::kGuaranteedOverflow));
}

// -- GD100: parse errors ----------------------------------------------------

TEST(Lint, GD100ParseErrorWithLocation) {
  const LintResult r = Lint("p(X <- q(X).\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].code, diag::kParseError);
  EXPECT_TRUE(r.diagnostics[0].loc.valid());
  EXPECT_EQ(r.diagnostics[0].loc.line, 1);
}

TEST(Lint, GD100NotFiredForValidSyntax) {
  const LintResult r = Lint("p(1).\n");
  EXPECT_FALSE(HasCode(r, diag::kParseError));
}

// -- GD101-GD105: per-rule structural errors --------------------------------

TEST(Lint, GD101MultipleNextGoals) {
  const LintResult r = Lint(
      "p(X, I) <- next(I), next(J), q(X), I = J.\nq(1).\n");
  EXPECT_TRUE(HasCode(r, diag::kMultipleNext));
}

TEST(Lint, GD102StageVarMissingFromHead) {
  const LintResult r = Lint("p(X) <- next(I), q(X).\nq(1).\n");
  EXPECT_TRUE(HasCode(r, diag::kBadStageVar));
}

TEST(Lint, GD102StageVarTwiceInHead) {
  const LintResult r = Lint("p(I, I) <- next(I), q(I).\nq(1).\n");
  EXPECT_TRUE(HasCode(r, diag::kBadStageVar));
}

TEST(Lint, GD103MultipleExtremaGoals) {
  const LintResult r = Lint(
      "p(X, I) <- next(I), q(X, C), least(C, I), most(X, I).\nq(1, 2).\n");
  EXPECT_TRUE(HasCode(r, diag::kMultipleExtrema));
}

TEST(Lint, GD104NonVariableExtremaCost) {
  const LintResult r = Lint(
      "p(X, I) <- next(I), q(X), least(7, I).\nq(1).\n");
  EXPECT_TRUE(HasCode(r, diag::kNonVariableCost));
}

TEST(Lint, GD105CostVariableInGrouping) {
  const LintResult r = Lint(
      "p(X, I) <- next(I), q(X, C), least(C, (C, I)).\nq(1, 2).\n");
  EXPECT_TRUE(HasCode(r, diag::kCostInGroup));
}

TEST(Lint, StructuralCodesNotFiredOnWellFormedNextRule) {
  const LintResult r = Lint(R"(
    sp(nil, 0, 0).
    sp(X, C, I) <- next(I), p(X, C), least(C, I).
    p(a, 1).
  )");
  EXPECT_FALSE(HasCode(r, diag::kMultipleNext));
  EXPECT_FALSE(HasCode(r, diag::kBadStageVar));
  EXPECT_FALSE(HasCode(r, diag::kMultipleExtrema));
  EXPECT_FALSE(HasCode(r, diag::kNonVariableCost));
  EXPECT_FALSE(HasCode(r, diag::kCostInGroup));
}

// -- Status bridge ----------------------------------------------------------

TEST(Diagnostics, StatusRoundTripsCode) {
  Diagnostic d = MakeDiagnostic(diag::kMultipleNext, "two next goals");
  const Status st = DiagnosticToStatus(d);
  EXPECT_EQ(st.code(), StatusCode::kAnalysisError);
  EXPECT_EQ(DiagCodeOfStatus(st), diag::kMultipleNext);

  Diagnostic parse = MakeDiagnostic(diag::kParseError, "bad token");
  EXPECT_EQ(DiagnosticToStatus(parse).code(), StatusCode::kParseError);
  EXPECT_EQ(DiagCodeOfStatus(Status::OK()), "");
  EXPECT_EQ(DiagCodeOfStatus(Status::AnalysisError("no code here")), "");
}

// -- Ordering and rendering -------------------------------------------------

TEST(Diagnostics, SortPutsErrorsFirst) {
  const LintResult r = Lint(R"(
    p(X) <- u(X).
    bad(X, Y) <- u(X).
  )");
  // GD001 (error, from rule 1) must sort before GD003 (warning: u is
  // undefined, first used in rule 0).
  ASSERT_GE(r.diagnostics.size(), 2u);
  EXPECT_EQ(r.diagnostics[0].severity, DiagSeverity::kError);
  EXPECT_EQ(r.counts.errors, 1u);
}

TEST(Diagnostics, RenderIncludesCodeLocationAndCounts) {
  const LintResult r = Lint("out(X, Y) <- e(X).\ne(1).\n");
  const std::string text = RenderDiagnostics(r.diagnostics, "golden.dl");
  EXPECT_NE(text.find("golden.dl:1:1"), std::string::npos) << text;
  EXPECT_NE(text.find("error[GD001]"), std::string::npos) << text;
  EXPECT_NE(text.find("1 error(s)"), std::string::npos) << text;
}

// -- JSON golden ------------------------------------------------------------

TEST(Diagnostics, JsonGolden) {
  const LintResult r = Lint("out(X, Y) <- e(X).\ne(1).\n");
  const std::string json = DiagnosticsJson(r.diagnostics, "golden");
  EXPECT_EQ(json,
            "{\"program\":\"golden\","
            "\"summary\":{\"errors\":1,\"warnings\":0,\"notes\":0},"
            "\"diagnostics\":[{"
            "\"code\":\"GD001\",\"severity\":\"error\","
            "\"message\":\"head variable Y of out is not bound by any "
            "positive body goal\","
            "\"predicate\":\"out/2\",\"rule\":0,\"line\":1,\"column\":1"
            "}]}");
}

}  // namespace
}  // namespace gdlog
