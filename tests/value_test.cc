// Unit tests for the value/term system: tagged handles, interning,
// ordering, printing.
#include "value/value.h"

#include <gtest/gtest.h>

namespace gdlog {
namespace {

TEST(Value, IntRoundTrip) {
  EXPECT_EQ(Value::Int(0).AsInt(), 0);
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_EQ(Value::Int(-42).AsInt(), -42);
  EXPECT_EQ(Value::Int(Value::kMaxInt).AsInt(), Value::kMaxInt);
  EXPECT_EQ(Value::Int(Value::kMinInt).AsInt(), Value::kMinInt);
}

TEST(Value, KindsAreDistinct) {
  ValueStore store;
  const Value i = Value::Int(1);
  const Value s = store.MakeSymbol("1");
  const Value n = Value::Nil();
  EXPECT_NE(i, s);
  EXPECT_NE(i, n);
  EXPECT_NE(s, n);
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(s.is_symbol());
  EXPECT_TRUE(n.is_nil());
}

TEST(ValueStore, SymbolInterning) {
  ValueStore store;
  const Value a1 = store.MakeSymbol("alpha");
  const Value a2 = store.MakeSymbol("alpha");
  const Value b = store.MakeSymbol("beta");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(store.SymbolName(a1), "alpha");
}

TEST(ValueStore, ManySymbolsSurviveRehash) {
  ValueStore store;
  std::vector<Value> symbols;
  for (int i = 0; i < 2000; ++i) {
    symbols.push_back(store.MakeSymbol("sym" + std::to_string(i)));
  }
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(store.MakeSymbol("sym" + std::to_string(i)), symbols[i]);
    EXPECT_EQ(store.SymbolName(symbols[i]), "sym" + std::to_string(i));
  }
}

TEST(ValueStore, TermInterning) {
  ValueStore store;
  const Value a = store.MakeSymbol("a");
  const Value b = store.MakeSymbol("b");
  std::vector<Value> args1{a, b};
  std::vector<Value> args2{a, b};
  std::vector<Value> args3{b, a};
  const Value t1 = store.MakeTerm("t", args1);
  const Value t2 = store.MakeTerm("t", args2);
  const Value t3 = store.MakeTerm("t", args3);
  EXPECT_EQ(t1, t2);
  EXPECT_NE(t1, t3);  // order matters
  EXPECT_NE(t1, store.MakeTerm("u", args1));  // functor matters
}

TEST(ValueStore, NestedTerms) {
  ValueStore store;
  const Value a = store.MakeSymbol("a");
  const Value b = store.MakeSymbol("b");
  const Value c = store.MakeSymbol("c");
  std::vector<Value> inner{a, b};
  const Value t_ab = store.MakeTerm("t", inner);
  std::vector<Value> outer{t_ab, c};
  const Value t2 = store.MakeTerm("t", outer);
  EXPECT_EQ(store.ToString(t2), "t(t(a,b),c)");
  auto args = store.TermArgs(t2.AsTermId());
  EXPECT_EQ(args[0], t_ab);
  EXPECT_EQ(args[1], c);
}

TEST(ValueStore, ZeroArityTermDistinctFromSymbol) {
  ValueStore store;
  const Value sym = store.MakeSymbol("k");
  const Value term = store.MakeTerm("k", {});
  EXPECT_NE(sym, term);
}

TEST(ValueStore, TuplesPrintBare) {
  ValueStore store;
  std::vector<Value> elems{Value::Int(1), Value::Int(2)};
  const Value t = store.MakeTuple(elems);
  EXPECT_TRUE(store.IsTuple(t));
  EXPECT_EQ(store.ToString(t), "(1,2)");
  EXPECT_EQ(store.ToString(store.MakeTuple({})), "()");
}

TEST(ValueStore, CompareCrossKind) {
  ValueStore store;
  const Value n = Value::Nil();
  const Value i = Value::Int(5);
  const Value s = store.MakeSymbol("a");
  const Value t = store.MakeTerm("t", {});
  // nil < int < symbol < term.
  EXPECT_LT(store.Compare(n, i), 0);
  EXPECT_LT(store.Compare(i, s), 0);
  EXPECT_LT(store.Compare(s, t), 0);
  EXPECT_GT(store.Compare(t, n), 0);
}

TEST(ValueStore, CompareInts) {
  ValueStore store;
  EXPECT_LT(store.Compare(Value::Int(-3), Value::Int(2)), 0);
  EXPECT_EQ(store.Compare(Value::Int(7), Value::Int(7)), 0);
  EXPECT_GT(store.Compare(Value::Int(100), Value::Int(99)), 0);
}

TEST(ValueStore, CompareSymbolsLexicographic) {
  ValueStore store;
  const Value a = store.MakeSymbol("apple");
  const Value b = store.MakeSymbol("banana");
  EXPECT_LT(store.Compare(a, b), 0);
  EXPECT_EQ(store.Compare(a, store.MakeSymbol("apple")), 0);
}

TEST(ValueStore, CompareTermsStructural) {
  ValueStore store;
  const Value a = store.MakeSymbol("a");
  const Value b = store.MakeSymbol("b");
  std::vector<Value> aa{a, a};
  std::vector<Value> ab{a, b};
  std::vector<Value> a1{a};
  const Value taa = store.MakeTerm("t", aa);
  const Value tab = store.MakeTerm("t", ab);
  const Value ta = store.MakeTerm("t", a1);
  EXPECT_LT(store.Compare(taa, tab), 0);  // arg order
  EXPECT_LT(store.Compare(ta, taa), 0);   // arity before args
  EXPECT_LT(store.Compare(store.MakeTerm("s", aa), taa), 0);  // functor
}

TEST(ValueStore, HashEqualityConsistent) {
  ValueStore store;
  std::vector<Value> args{Value::Int(1)};
  const Value x = store.MakeTerm("f", args);
  const Value y = store.MakeTerm("f", args);
  EXPECT_EQ(x, y);
  EXPECT_EQ(x.Hash(), y.Hash());
}

}  // namespace
}  // namespace gdlog
