// Unit tests for the socket-free half of the observability HTTP server:
// request-head parsing, limit enforcement (the 414/431 paths), header
// normalisation, and response-head serialisation.
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "obs/http/http_parser.h"

namespace gdlog {
namespace {

HttpParseStatus Parse(std::string_view data, HttpRequest* out,
                      size_t* consumed = nullptr,
                      const HttpLimits& limits = HttpLimits{}) {
  size_t dummy = 0;
  return ParseHttpRequest(data, limits, out, consumed ? consumed : &dummy);
}

TEST(HttpParser, ParsesMinimalGet) {
  HttpRequest req;
  size_t consumed = 0;
  const std::string raw = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(Parse(raw, &req, &consumed), HttpParseStatus::kOk);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/metrics");
  EXPECT_EQ(req.query, "");
  EXPECT_EQ(req.version_minor, 1);
  EXPECT_EQ(consumed, raw.size());
  EXPECT_EQ(req.Header("host"), "x");
  EXPECT_EQ(req.Header("HOST"), "x");  // case-insensitive lookup
}

TEST(HttpParser, SplitsQueryString) {
  HttpRequest req;
  ASSERT_EQ(Parse("GET /progress?since=42 HTTP/1.1\r\n\r\n", &req),
            HttpParseStatus::kOk);
  EXPECT_EQ(req.path, "/progress");
  EXPECT_EQ(req.query, "since=42");
}

TEST(HttpParser, IncompleteUntilBlankLine) {
  HttpRequest req;
  EXPECT_EQ(Parse("GET / HTTP/1.1\r\n", &req), HttpParseStatus::kIncomplete);
  EXPECT_EQ(Parse("GET / HTTP/1.1\r\nHost: x\r\n", &req),
            HttpParseStatus::kIncomplete);
  EXPECT_EQ(Parse("GE", &req), HttpParseStatus::kIncomplete);
}

TEST(HttpParser, ConsumedExcludesPipelinedBytes) {
  HttpRequest req;
  size_t consumed = 0;
  const std::string head = "GET /a HTTP/1.1\r\n\r\n";
  ASSERT_EQ(Parse(head + "GET /b HTTP/1.1\r\n\r\n", &req, &consumed),
            HttpParseStatus::kOk);
  EXPECT_EQ(consumed, head.size());
  EXPECT_EQ(req.path, "/a");
}

TEST(HttpParser, RejectsMalformedRequestLines) {
  HttpRequest req;
  EXPECT_EQ(Parse("GET\r\n\r\n", &req), HttpParseStatus::kBadRequest);
  EXPECT_EQ(Parse("GET /\r\n\r\n", &req), HttpParseStatus::kBadRequest);
  EXPECT_EQ(Parse("GET  / HTTP/1.1\r\n\r\n", &req),
            HttpParseStatus::kBadRequest);
  // Target must be origin-form: no absolute URIs, no authority form.
  EXPECT_EQ(Parse("GET http://e/ HTTP/1.1\r\n\r\n", &req),
            HttpParseStatus::kBadRequest);
  EXPECT_EQ(Parse("CONNECT e:80 HTTP/1.1\r\n\r\n", &req),
            HttpParseStatus::kBadRequest);
  // Control bytes in the target.
  EXPECT_EQ(Parse("GET /\x01 HTTP/1.1\r\n\r\n", &req),
            HttpParseStatus::kBadRequest);
  // Bare LF line endings are not accepted.
  EXPECT_EQ(Parse("GET / HTTP/1.1\n\n", &req), HttpParseStatus::kBadRequest);
}

TEST(HttpParser, RejectsNonHttp1Versions) {
  HttpRequest req;
  EXPECT_EQ(Parse("GET / HTTP/2.0\r\n\r\n", &req),
            HttpParseStatus::kBadVersion);
  EXPECT_EQ(Parse("GET / SPDY/3\r\n\r\n", &req),
            HttpParseStatus::kBadVersion);
  ASSERT_EQ(Parse("GET / HTTP/1.0\r\n\r\n", &req), HttpParseStatus::kOk);
  EXPECT_EQ(req.version_minor, 0);
}

TEST(HttpParser, RejectsMalformedHeaders) {
  HttpRequest req;
  EXPECT_EQ(Parse("GET / HTTP/1.1\r\nNoColon\r\n\r\n", &req),
            HttpParseStatus::kBadRequest);
  // Whitespace before the colon smuggles header confusion; reject.
  EXPECT_EQ(Parse("GET / HTTP/1.1\r\nHost : x\r\n\r\n", &req),
            HttpParseStatus::kBadRequest);
  // Obsolete line folding (continuation lines) is rejected.
  EXPECT_EQ(Parse("GET / HTTP/1.1\r\nA: b\r\n c\r\n\r\n", &req),
            HttpParseStatus::kBadRequest);
  EXPECT_EQ(Parse("GET / HTTP/1.1\r\n: novalue\r\n\r\n", &req),
            HttpParseStatus::kBadRequest);
}

TEST(HttpParser, HeaderValuesAreTrimmedAndNamesLowered) {
  HttpRequest req;
  ASSERT_EQ(Parse("GET / HTTP/1.1\r\nAccept:   text/plain  \r\n\r\n", &req),
            HttpParseStatus::kOk);
  ASSERT_EQ(req.headers.size(), 1u);
  EXPECT_EQ(req.headers[0].first, "accept");
  EXPECT_EQ(req.headers[0].second, "text/plain");
  EXPECT_EQ(req.Header("missing"), "");
}

TEST(HttpParser, OversizedRequestLineFailsEvenWhileIncomplete) {
  // A hostile sender that never sends CRLF must not stall the parser in
  // kIncomplete: the limit applies to the partial data too.
  HttpRequest req;
  HttpLimits limits;
  limits.max_request_line = 64;
  const std::string long_target = "GET /" + std::string(200, 'a');
  EXPECT_EQ(Parse(long_target, &req, nullptr, limits),
            HttpParseStatus::kUriTooLong);
  // And the same over-limit line with the CRLF present.
  EXPECT_EQ(Parse(long_target + " HTTP/1.1\r\n\r\n", &req, nullptr, limits),
            HttpParseStatus::kUriTooLong);
}

TEST(HttpParser, OversizedHeadFailsEvenWhileIncomplete) {
  HttpRequest req;
  HttpLimits limits;
  limits.max_head_bytes = 256;
  std::string raw = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 40; ++i) {
    raw += "X-Filler-" + std::to_string(i) + ": aaaaaaaaaaaaaaaa\r\n";
  }
  // No terminating blank line — still must fail fast.
  EXPECT_EQ(Parse(raw, &req, nullptr, limits),
            HttpParseStatus::kHeadersTooLarge);
}

TEST(HttpParser, TooManyHeadersFails) {
  HttpRequest req;
  HttpLimits limits;
  limits.max_headers = 4;
  std::string raw = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 8; ++i) {
    raw += "h" + std::to_string(i) + ": v\r\n";
  }
  raw += "\r\n";
  EXPECT_EQ(Parse(raw, &req, nullptr, limits),
            HttpParseStatus::kHeadersTooLarge);
}

TEST(HttpParser, ReasonPhrasesCoverEmittedStatuses) {
  EXPECT_EQ(HttpReasonPhrase(200), "OK");
  EXPECT_EQ(HttpReasonPhrase(400), "Bad Request");
  EXPECT_EQ(HttpReasonPhrase(404), "Not Found");
  EXPECT_EQ(HttpReasonPhrase(405), "Method Not Allowed");
  EXPECT_EQ(HttpReasonPhrase(408), "Request Timeout");
  EXPECT_EQ(HttpReasonPhrase(414), "URI Too Long");
  EXPECT_EQ(HttpReasonPhrase(431), "Request Header Fields Too Large");
  EXPECT_EQ(HttpReasonPhrase(500), "Internal Server Error");
  EXPECT_EQ(HttpReasonPhrase(503), "Service Unavailable");
  EXPECT_EQ(HttpReasonPhrase(505), "HTTP Version Not Supported");
  EXPECT_FALSE(HttpReasonPhrase(299).empty());  // unknown -> generic
}

TEST(HttpParser, ResponseHeadHasLengthAndConnectionClose) {
  const std::string head =
      BuildHttpResponseHead(200, "text/plain; charset=utf-8", 42,
                            {{"X-Extra", "1"}});
  EXPECT_EQ(head.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << head;
  EXPECT_NE(head.find("Content-Type: text/plain; charset=utf-8\r\n"),
            std::string::npos);
  EXPECT_NE(head.find("Content-Length: 42\r\n"), std::string::npos);
  EXPECT_NE(head.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(head.find("X-Extra: 1\r\n"), std::string::npos);
  // Terminates with the blank line and nothing after it.
  ASSERT_GE(head.size(), 4u);
  EXPECT_EQ(head.substr(head.size() - 4), "\r\n\r\n");
}

}  // namespace
}  // namespace gdlog
