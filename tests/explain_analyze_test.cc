// EXPLAIN ANALYZE differential test: every per-goal actual (probes, rows
// touched, matches, mean rows per probe) is asserted against counts
// derived by hand from a tiny fixture, and the misestimation factor must
// equal actual/estimated exactly as reported.
//
// Fixture:
//   e(1,2). e(1,3). e(2,3).
//   f(2). f(3). f(4). f(5). f(6). f(7).
//   g(3).
//   p(X,Y) <- e(X,Y), f(Y).
//   q(X) <- p(X,Y), g(Y).
//
// The cost-based planner orders rule p as e (3 rows) before f (6 rows),
// and rule q as g (1 row, EDB) before p (IDB, default estimate). Hand
// counts for that order:
//
//   rule p: goal e unbound — 1 probe scanning all 3 rows, 3 matches
//           (actual 3.0); goal f bound on Y — one probe per e match, so
//           3 probes, each touching exactly the 1 matching row (Y in
//           {2,3,3}), 3 matches, actual 1.0.
//   rule q: goal g unbound — 1 probe, 1 row, 1 match; goal p bound on
//           Y=3 — 1 probe, p = {(1,2),(1,3),(2,3)} has 2 rows with Y=3,
//           so 2 rows, 2 matches, actual 2.0. The planner's IDB guess is
//           larger, so the misestimation factor is well below 1.
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "obs/json.h"

namespace gdlog {
namespace {

constexpr char kFixture[] = R"(
  e(1,2). e(1,3). e(2,3).
  f(2). f(3). f(4). f(5). f(6). f(7).
  g(3).
  p(X,Y) <- e(X,Y), f(Y).
  q(X) <- p(X,Y), g(Y).
)";

struct GoalActual {
  double est = -1;
  uint64_t probes = 0;
  uint64_t rows = 0;
  uint64_t matches = 0;
  double actual_rows = -1;
  double misestimate = -1;
  bool found = false;
};

/// Pulls one goal's numbers out of the report's plans section.
GoalActual FindGoal(const JsonValue& doc, const std::string& goal) {
  GoalActual out;
  const JsonValue* plans = doc.Find("plans");
  if (plans == nullptr || !plans->is_array()) return out;
  for (const JsonValue& rule : plans->items) {
    const JsonValue* goals = rule.Find("goals");
    if (goals == nullptr) continue;
    for (const JsonValue& g : goals->items) {
      const JsonValue* name = g.Find("goal");
      if (name == nullptr || name->string != goal) continue;
      out.found = true;
      if (const JsonValue* e = g.Find("est_rows")) out.est = e->number;
      const JsonValue* actual = g.Find("actual");
      if (actual == nullptr) return out;
      out.probes = static_cast<uint64_t>(actual->Find("probes")->number);
      out.rows = static_cast<uint64_t>(actual->Find("rows")->number);
      out.matches = static_cast<uint64_t>(actual->Find("matches")->number);
      out.actual_rows = actual->Find("actual_rows")->number;
      if (const JsonValue* m = actual->Find("misestimate")) {
        out.misestimate = m->number;
      }
      return out;
    }
  }
  return out;
}

TEST(ExplainAnalyze, ActualsMatchHandCountedFixture) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(kFixture).ok());
  ASSERT_TRUE(e.Run().ok());
  // Sanity: the fixture derives what we counted from.
  EXPECT_EQ(e.Query("p", 2).size(), 3u);
  EXPECT_EQ(e.Query("q", 1).size(), 2u);

  auto report = e.RunReport();
  ASSERT_TRUE(report.ok());
  auto doc = ParseJson(*report);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  // Rule p, goal e/2: full scan, every row matches.
  const GoalActual ge = FindGoal(*doc, "e/2");
  ASSERT_TRUE(ge.found);
  EXPECT_EQ(ge.est, 3.0);
  EXPECT_EQ(ge.probes, 1u);
  EXPECT_EQ(ge.rows, 3u);
  EXPECT_EQ(ge.matches, 3u);
  EXPECT_DOUBLE_EQ(ge.actual_rows, 3.0);
  ASSERT_GE(ge.misestimate, 0);
  EXPECT_DOUBLE_EQ(ge.misestimate, ge.actual_rows / ge.est);

  // Rule p, goal f/1 bound on Y: one probe per e-match, one hit each.
  const GoalActual gf = FindGoal(*doc, "f/1");
  ASSERT_TRUE(gf.found);
  EXPECT_EQ(gf.probes, 3u);
  EXPECT_EQ(gf.rows, 3u);
  EXPECT_EQ(gf.matches, 3u);
  EXPECT_DOUBLE_EQ(gf.actual_rows, 1.0);

  // Rule q, goal g/1: singleton scan.
  const GoalActual gg = FindGoal(*doc, "g/1");
  ASSERT_TRUE(gg.found);
  EXPECT_EQ(gg.probes, 1u);
  EXPECT_EQ(gg.rows, 1u);
  EXPECT_EQ(gg.matches, 1u);

  // Rule q, goal p/2 bound on Y=3: two of p's three tuples match, and
  // the planner's IDB estimate exceeds the truth, so the misestimation
  // factor lands below 1 at exactly actual/est.
  const GoalActual gp = FindGoal(*doc, "p/2");
  ASSERT_TRUE(gp.found);
  EXPECT_EQ(gp.probes, 1u);
  EXPECT_EQ(gp.rows, 2u);
  EXPECT_EQ(gp.matches, 2u);
  EXPECT_DOUBLE_EQ(gp.actual_rows, 2.0);
  ASSERT_GT(gp.est, 2.0);
  ASSERT_GE(gp.misestimate, 0);
  // The report prints doubles at 12 significant digits, so the ratio
  // only reproduces to that precision once estimates stop being powers
  // of two (the analysis prior makes them sqrt-shaped).
  EXPECT_NEAR(gp.misestimate, gp.actual_rows / gp.est, 1e-9);
  EXPECT_LT(gp.misestimate, 1.0);
}

TEST(ExplainAnalyze, TextRendererShowsEstimatesAndActuals) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(kFixture).ok());
  ASSERT_TRUE(e.Run().ok());
  auto text = e.ExplainAnalyzeText();
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(text->find("e/2"), std::string::npos);
  EXPECT_NE(text->find("est="), std::string::npos);
  EXPECT_NE(text->find("probes="), std::string::npos);
  EXPECT_NE(text->find("actual="), std::string::npos);
  EXPECT_NE(text->find("x0."), std::string::npos);  // a misestimate < 1
  // The analysis-vs-actual cardinality gap table for derived predicates.
  EXPECT_NE(text->find("analysis cardinality bounds"), std::string::npos);
  EXPECT_NE(text->find("p/2"), std::string::npos);
  EXPECT_NE(text->find("within"), std::string::npos);
}

/// The abstract interpreter bounds p/2 by |e| * |f| = 18 rows; fed to
/// the planner as a prior, rule q's scan of p estimates 18/sqrt(18) =
/// 4.24 instead of the neutral default 256/16 = 16 — much closer to the
/// true 2.0. The ablation flag restores the default, and the derived
/// model is identical either way (priors only reorder goals).
TEST(ExplainAnalyze, CardinalityPriorsReduceIdbMisestimation) {
  auto goal_p = [](bool priors, size_t* q_rows) {
    EngineOptions opts;
    opts.eval.use_cardinality_priors = priors;
    Engine e(opts);
    EXPECT_TRUE(e.LoadProgram(kFixture).ok());
    EXPECT_TRUE(e.Run().ok());
    *q_rows = e.Query("q", 1).size();
    auto report = e.RunReport();
    EXPECT_TRUE(report.ok());
    auto doc = ParseJson(*report);
    EXPECT_TRUE(doc.ok());
    return FindGoal(*doc, "p/2");
  };
  size_t q_with = 0, q_without = 0;
  const GoalActual with = goal_p(true, &q_with);
  const GoalActual without = goal_p(false, &q_without);
  ASSERT_TRUE(with.found);
  ASSERT_TRUE(without.found);
  EXPECT_DOUBLE_EQ(without.est, 16.0);
  EXPECT_NEAR(with.est, 18.0 / std::sqrt(18.0), 1e-9);
  ASSERT_GT(with.misestimate, 0);
  ASSERT_GT(without.misestimate, 0);
  EXPECT_LT(std::fabs(1.0 - with.misestimate),
            std::fabs(1.0 - without.misestimate));
  EXPECT_EQ(q_with, 2u);
  EXPECT_EQ(q_without, 2u);
}

TEST(ExplainAnalyze, BeforeRunIsAnError) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(kFixture).ok());
  EXPECT_FALSE(e.ExplainAnalyzeText().ok());
}

TEST(ExplainAnalyze, ActualsAbsentWhenMetricsOff) {
  EngineOptions opts;
  opts.obs.metrics_enabled = false;
  Engine e(opts);
  ASSERT_TRUE(e.LoadProgram(kFixture).ok());
  ASSERT_TRUE(e.Run().ok());
  auto report = e.RunReport();
  ASSERT_TRUE(report.ok());
  auto doc = ParseJson(*report);
  ASSERT_TRUE(doc.ok());
  // Estimates are still reported; the executor-side actuals need the
  // metrics-mode goal tables and must vanish cleanly, not crash.
  const GoalActual ge = FindGoal(*doc, "e/2");
  ASSERT_TRUE(ge.found);
  EXPECT_EQ(ge.est, 3.0);
  EXPECT_EQ(ge.actual_rows, -1);
}

/// The parallel path buffers per-task goal counters and merges them
/// serially; totals must not depend on the worker count.
TEST(ExplainAnalyze, ActualsAreThreadCountInvariant) {
  auto counts_for = [](uint32_t threads) {
    EngineOptions opts;
    opts.eval.threads = threads;
    Engine e(opts);
    EXPECT_TRUE(e.LoadProgram(kFixture).ok());
    EXPECT_TRUE(e.Run().ok());
    auto report = e.RunReport();
    EXPECT_TRUE(report.ok());
    auto doc = ParseJson(*report);
    EXPECT_TRUE(doc.ok());
    return FindGoal(*doc, "f/1");
  };
  const GoalActual serial = counts_for(1);
  const GoalActual parallel = counts_for(4);
  ASSERT_TRUE(serial.found);
  ASSERT_TRUE(parallel.found);
  EXPECT_EQ(serial.probes, parallel.probes);
  EXPECT_EQ(serial.rows, parallel.rows);
  EXPECT_EQ(serial.matches, parallel.matches);
}

}  // namespace
}  // namespace gdlog
