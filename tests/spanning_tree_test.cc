// Example 3: spanning tree through pure choice — exercises the plain
// Choice Fixpoint (no stage variables, no extrema).
#include "greedy/spanning_tree.h"

#include <gtest/gtest.h>

#include <set>

#include "workload/graph_gen.h"

namespace gdlog {
namespace {

TEST(SpanningTree, CoversConnectedGraph) {
  GraphGenOptions opts;
  opts.seed = 14;
  const Graph g = ConnectedRandomGraph(30, 45, opts);
  auto result = ComputeSpanningTree(g, 0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->edges.size(), g.num_nodes - 1);
  std::set<int64_t> reached{0};
  // st edges form a tree rooted at 0: each node entered exactly once.
  std::set<int64_t> entered;
  for (const SpanningTreeEdge& e : result->edges) {
    EXPECT_TRUE(entered.insert(e.node).second);
  }
  EXPECT_FALSE(entered.count(0));
}

TEST(SpanningTree, EdgesComeFromTheGraph) {
  GraphGenOptions opts;
  opts.seed = 23;
  const Graph g = ConnectedRandomGraph(15, 15, opts);
  std::set<std::tuple<int64_t, int64_t, int64_t>> arcs;
  for (const GraphEdge& e : g.edges) {
    arcs.insert({e.u, e.v, e.w});
    arcs.insert({e.v, e.u, e.w});
  }
  auto result = ComputeSpanningTree(g, 0);
  ASSERT_TRUE(result.ok());
  for (const SpanningTreeEdge& e : result->edges) {
    EXPECT_TRUE(arcs.count({e.parent, e.node, e.cost}))
        << e.parent << "->" << e.node;
  }
}

TEST(SpanningTree, DifferentSeedsCanGiveDifferentTrees) {
  // The choice construct is non-deterministic: different tie-break seeds
  // should be able to produce different stable models.
  GraphGenOptions opts;
  opts.seed = 100;
  const Graph g = CompleteGraph(8, opts);
  EngineOptions e1, e2;
  e1.eval.choice_seed = 0;
  e2.eval.choice_seed = 777;
  auto r1 = ComputeSpanningTree(g, 0, e1);
  auto r2 = ComputeSpanningTree(g, 0, e2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->edges.size(), r2->edges.size());
  auto key = [](const DeclarativeSpanningTree& t) {
    std::set<std::pair<int64_t, int64_t>> s;
    for (const auto& e : t.edges) s.insert({e.parent, e.node});
    return s;
  };
  EXPECT_NE(key(*r1), key(*r2));
}

TEST(SpanningTree, EverySeedGivesAStableModel) {
  GraphGenOptions opts;
  opts.seed = 3;
  const Graph g = ConnectedRandomGraph(6, 6, opts);
  for (uint64_t seed : {0u, 5u, 99u}) {
    EngineOptions eo;
    eo.eval.choice_seed = seed;
    auto result = ComputeSpanningTree(g, 0, eo);
    ASSERT_TRUE(result.ok());
    auto check = result->engine->VerifyStableModel();
    ASSERT_TRUE(check.ok()) << check.status().ToString();
    EXPECT_TRUE(check->stable) << "seed " << seed << ": "
                               << check->diagnostic;
  }
}

}  // namespace
}  // namespace gdlog
