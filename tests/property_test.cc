// Parameterized property sweeps: for many random seeds, the declarative
// engine must agree with the procedural baselines, and every produced
// fact set must satisfy the algorithms' invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>

#include "api/engine.h"
#include "baselines/heapsort.h"
#include "common/rng.h"
#include "baselines/huffman.h"
#include "baselines/kruskal.h"
#include "baselines/matching.h"
#include "baselines/prim.h"
#include "baselines/tsp.h"
#include "baselines/union_find.h"
#include "greedy/huffman.h"
#include "greedy/kruskal.h"
#include "greedy/matching.h"
#include "greedy/prim.h"
#include "greedy/sort.h"
#include "greedy/tsp.h"
#include "workload/graph_gen.h"
#include "workload/relation_gen.h"
#include "workload/text_gen.h"

namespace gdlog {
namespace {

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, PrimEqualsBaseline) {
  GraphGenOptions opts;
  opts.seed = GetParam();
  const Graph g = ConnectedRandomGraph(35, 70, opts);
  auto result = PrimMst(g, 0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_cost, BaselinePrim(g, 0).total_cost);
  EXPECT_EQ(result->edges.size(), g.num_nodes - 1);
}

TEST_P(SeedSweep, KruskalEqualsBaselineAndPrim) {
  GraphGenOptions opts;
  opts.seed = GetParam();
  const Graph g = ConnectedRandomGraph(25, 50, opts);
  auto kruskal = KruskalMst(g);
  ASSERT_TRUE(kruskal.ok());
  const int64_t base = BaselineKruskal(g).total_cost;
  EXPECT_EQ(kruskal->total_cost, base);
  auto prim = PrimMst(g, 0);
  ASSERT_TRUE(prim.ok());
  EXPECT_EQ(prim->total_cost, base);
}

TEST_P(SeedSweep, KruskalProducesAcyclicSpanningForest) {
  GraphGenOptions opts;
  opts.seed = GetParam();
  const Graph g = ConnectedRandomGraph(20, 30, opts);
  auto result = KruskalMst(g);
  ASSERT_TRUE(result.ok());
  UnionFind uf(g.num_nodes);
  for (const MstEdge& e : result->edges) {
    EXPECT_TRUE(uf.Union(static_cast<uint32_t>(e.parent),
                         static_cast<uint32_t>(e.node)));
  }
  EXPECT_EQ(uf.num_components(), 1u);
}

TEST_P(SeedSweep, SortEqualsHeapSort) {
  RelationGenOptions opts;
  opts.seed = GetParam();
  const auto tuples = RandomCostedRelation(150, opts);
  auto result = SortRelation(tuples);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sorted, BaselineHeapSort(tuples));
}

TEST_P(SeedSweep, MatchingEqualsBaseline) {
  GraphGenOptions opts;
  opts.seed = GetParam();
  const Graph g = BipartiteGraph(18, 18, 100, opts);
  auto result = GreedyMatching(g);
  ASSERT_TRUE(result.ok());
  const BaselineMatching base = BaselineGreedyMatching(g);
  EXPECT_EQ(result->total_cost, base.total_cost);
  EXPECT_EQ(result->arcs.size(), base.arcs.size());
}

TEST_P(SeedSweep, HuffmanEqualsBaselineCost) {
  TextGenOptions opts;
  opts.seed = GetParam();
  const auto freqs = ZipfLetterFrequencies(9, opts);
  auto result = HuffmanTree(freqs);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_cost, BaselineHuffman(freqs).total_cost);
  EXPECT_EQ(result->merges, freqs.size() - 1);
}

TEST_P(SeedSweep, TspEqualsBaseline) {
  GraphGenOptions opts;
  opts.seed = GetParam();
  const Graph g = CompleteGraph(10, opts);
  auto result = GreedyTspChain(g);
  ASSERT_TRUE(result.ok());
  const BaselineTspChain base = BaselineGreedyTsp(g);
  EXPECT_EQ(result->total_cost, base.total_cost);
  EXPECT_EQ(result->chain.size(), base.arcs.size());
}

TEST_P(SeedSweep, GridGraphMst) {
  GraphGenOptions opts;
  opts.seed = GetParam();
  const Graph g = GridGraph(6, 6, opts);
  auto prim = PrimMst(g, 0);
  ASSERT_TRUE(prim.ok());
  EXPECT_EQ(prim->total_cost, BaselinePrim(g, 0).total_cost);
}

TEST_P(SeedSweep, ChoiceSeedStillOptimalForPrim) {
  // Tie-break seeds change which stable model the engine constructs, but
  // with unique weights the MST weight is invariant.
  GraphGenOptions gopts;
  gopts.seed = GetParam();
  const Graph g = ConnectedRandomGraph(20, 40, gopts);
  const int64_t expected = BaselinePrim(g, 0).total_cost;
  EngineOptions eopts;
  eopts.eval.choice_seed = GetParam() * 7919 + 13;
  auto result = PrimMst(g, 0, eopts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_cost, expected);
}

TEST_P(SeedSweep, SmallInstancesAreStableModels) {
  GraphGenOptions opts;
  opts.seed = GetParam();
  const Graph g = ConnectedRandomGraph(6, 5, opts);
  auto prim = PrimMst(g, 0);
  ASSERT_TRUE(prim.ok());
  auto check = prim->engine->VerifyStableModel();
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_TRUE(check->stable) << check->diagnostic;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89, 144, 233));

// -- Randomized stratified programs -------------------------------------
//
// A generated family: random EDBs, a recursive clique, a comparison
// filter, and a stratified negation — with the body goal order itself
// randomized, so the planner has real reordering work on every seed.
// These programs have a unique model (no choice), so serial, parallel,
// planned, and unplanned runs must all agree exactly.

struct RandomProgram {
  std::string text;
  std::vector<std::vector<int64_t>> e1, e2;  // EDB tuples
};

RandomProgram MakeRandomStratifiedProgram(uint64_t seed) {
  Rng rng(seed);
  RandomProgram p;
  const int64_t domain = rng.NextInt(6, 14);
  const int e1_rows = static_cast<int>(rng.NextInt(5, 30));
  const int e2_rows = static_cast<int>(rng.NextInt(5, 30));
  for (int i = 0; i < e1_rows; ++i) {
    p.e1.push_back({rng.NextInt(0, domain), rng.NextInt(0, domain)});
  }
  for (int i = 0; i < e2_rows; ++i) {
    p.e2.push_back({rng.NextInt(0, domain), rng.NextInt(0, domain)});
  }
  std::ostringstream out;
  out << "path(X, Y) <- e1(X, Y).\n";
  // Randomize the recursive rule's goal order: the delta atom must stay
  // pinned regardless of where it is written.
  if (rng.NextBounded(2)) {
    out << "path(X, Z) <- path(X, Y), e2(Y, Z).\n";
  } else {
    out << "path(X, Z) <- e2(Y, Z), path(X, Y).\n";
  }
  if (rng.NextBounded(2)) {
    out << "join(X, Z) <- e1(X, Y), e2(Y, Z), X < Z.\n";
  } else {
    out << "join(X, Z) <- e2(Y, Z), X < Z, e1(X, Y).\n";
  }
  out << "lonely(X) <- path(X, Y), not e2(Y, X).\n";
  if (rng.NextBounded(2)) {
    out << "tri(X, Y, Z) <- e1(X, Y), e1(Y, Z), e1(Z, X).\n";
  }
  p.text = out.str();
  return p;
}

/// Ordered model dump: the parallel and cross-backend contracts are
/// bit-identity, not just set equality.
std::vector<std::string> DumpOrderedModel(const Engine& e) {
  std::vector<std::string> lines;
  for (const auto& ref : e.program()->AllPredicates()) {
    for (const auto& tuple : e.Query(ref.name, ref.arity)) {
      std::string line = ref.name;
      for (const Value& v : tuple) {
        line += ' ';
        line += e.store().ToString(v);
      }
      lines.push_back(std::move(line));
    }
  }
  return lines;
}

void AddEdbFacts(Engine* e, const RandomProgram& p) {
  for (const auto& row : p.e1) {
    EXPECT_TRUE(
        e->AddFact("e1", {Value::Int(row[0]), Value::Int(row[1])}).ok());
  }
  for (const auto& row : p.e2) {
    EXPECT_TRUE(
        e->AddFact("e2", {Value::Int(row[0]), Value::Int(row[1])}).ok());
  }
}

std::vector<std::string> RunRandomProgramWith(const RandomProgram& p,
                                             EngineOptions opts) {
  Engine e(opts);
  auto load = e.LoadProgram(p.text);
  EXPECT_TRUE(load.ok()) << load.ToString() << "\n" << p.text;
  AddEdbFacts(&e, p);
  auto run = e.Run();
  EXPECT_TRUE(run.ok()) << run.ToString() << "\n" << p.text;
  return DumpOrderedModel(e);
}

std::vector<std::string> RunRandomProgram(const RandomProgram& p,
                                          uint32_t threads,
                                          bool use_planner) {
  EngineOptions opts;
  opts.eval.threads = threads;
  opts.eval.use_join_planner = use_planner;
  opts.eval.parallel_min_rows = 2;  // force partitioning on tiny EDBs
  return RunRandomProgramWith(p, opts);
}

TEST_P(SeedSweep, RandomStratifiedParallelEqualsSerial) {
  const RandomProgram p = MakeRandomStratifiedProgram(GetParam() * 31 + 7);
  const auto serial = RunRandomProgram(p, 1, /*use_planner=*/true);
  ASSERT_FALSE(serial.empty());
  for (uint32_t threads : {2u, 8u}) {
    EXPECT_EQ(RunRandomProgram(p, threads, true), serial)
        << "threads=" << threads << "\n" << p.text;
  }
}

TEST_P(SeedSweep, RandomStratifiedPlannerPreservesModel) {
  const RandomProgram p = MakeRandomStratifiedProgram(GetParam() * 131 + 3);
  // Unique-model programs: the planner may change goal order inside a
  // body (and with it the enumeration, hence insertion, order) but never
  // the derived fact set.
  auto unplanned = RunRandomProgram(p, 1, /*use_planner=*/false);
  auto planned = RunRandomProgram(p, 1, /*use_planner=*/true);
  std::sort(unplanned.begin(), unplanned.end());
  std::sort(planned.begin(), planned.end());
  EXPECT_EQ(unplanned, planned) << p.text;
}

TEST_P(SeedSweep, RandomStratifiedParallelWithoutPlanner) {
  // The two features compose: parallel merge must also be exact when the
  // plans come out in parser order.
  const RandomProgram p = MakeRandomStratifiedProgram(GetParam() * 977 + 11);
  EXPECT_EQ(RunRandomProgram(p, 8, /*use_planner=*/false),
            RunRandomProgram(p, 1, /*use_planner=*/false))
      << p.text;
}

// -- Cross-backend property sweep: bytecode VM vs interpreter -----------
//
// The same randomized stratified family plus a randomized choice family
// (stage loop with least + FIFO choice FD), now also swept across the
// rule-execution backend. The interpreter is the oracle: every VM run
// must reproduce its model bit-identically, and bounded stops
// (GD201/GD202/GD203 — tuple, stage, iteration limits) must trip at the
// same point with the same partial state.

TEST_P(SeedSweep, RandomStratifiedVmMatchesInterpreter) {
  const RandomProgram p = MakeRandomStratifiedProgram(GetParam() * 389 + 19);
  const auto oracle = RunRandomProgram(p, 1, /*use_planner=*/true);
  ASSERT_FALSE(oracle.empty());
  for (uint32_t threads : {1u, 8u}) {
    for (bool planner : {true, false}) {
      EngineOptions opts;
      opts.eval.backend = EvalBackend::kVm;
      opts.eval.threads = threads;
      opts.eval.use_join_planner = planner;
      opts.eval.parallel_min_rows = 2;
      if (planner) {
        EXPECT_EQ(RunRandomProgramWith(p, opts), oracle)
            << "threads=" << threads << "\n" << p.text;
      } else {
        // The planner changes enumeration order; compare against the
        // interpreter under the same plans instead.
        EXPECT_EQ(RunRandomProgramWith(p, opts),
                  RunRandomProgram(p, threads, false))
            << "threads=" << threads << "\n" << p.text;
      }
    }
  }
}

/// Randomized choice family: a sort-style stage loop (least over items
/// with deliberately colliding costs, so FIFO tie-breaks matter), a
/// stratified join over the stage order, and a FIFO choice FD.
struct RandomChoiceProgram {
  std::string text;
  std::vector<std::vector<int64_t>> items;  // item(X, C)
  std::vector<std::vector<int64_t>> cands;  // cand(X, Y)
};

RandomChoiceProgram MakeRandomChoiceProgram(uint64_t seed) {
  Rng rng(seed);
  RandomChoiceProgram p;
  const int64_t n = rng.NextInt(4, 12);
  for (int64_t i = 0; i < n; ++i) {
    // Cost collisions are deliberate: ties exercise the deterministic
    // pop order both backends must share.
    p.items.push_back({i, rng.NextInt(0, 8)});
  }
  const int64_t domain = rng.NextInt(3, 8);
  const int64_t pairs = rng.NextInt(4, 20);
  for (int64_t i = 0; i < pairs; ++i) {
    p.cands.push_back({rng.NextInt(0, domain), rng.NextInt(0, domain)});
  }
  std::ostringstream out;
  out << "sorted(nil, 0, 0).\n"
      << "sorted(X, C, I) <- next(I), item(X, C), least(C, I).\n"
      << "ord(X, Y) <- sorted(X, _, I), sorted(Y, _, J), I < J.\n"
      << "sel(X, Y) <- cand(X, Y), choice(X, Y).\n";
  if (rng.NextBounded(2)) {
    out << "mutual(X, Y) <- sel(X, Y), sel(Y, X).\n";
  }
  p.text = out.str();
  return p;
}

struct BackendRunResult {
  TerminationReason reason = TerminationReason::kCompleted;
  std::string status;
  std::vector<std::string> model;
};

BackendRunResult RunChoiceProgram(const RandomChoiceProgram& p,
                                  EvalBackend backend, uint32_t threads,
                                  RunLimits limits = {}) {
  EngineOptions opts;
  opts.eval.backend = backend;
  opts.eval.threads = threads;
  opts.eval.parallel_min_rows = 2;
  opts.limits = limits;
  Engine e(opts);
  auto load = e.LoadProgram(p.text);
  EXPECT_TRUE(load.ok()) << load.ToString() << "\n" << p.text;
  for (const auto& row : p.items) {
    EXPECT_TRUE(
        e.AddFact("item", {Value::Int(row[0]), Value::Int(row[1])}).ok());
  }
  for (const auto& row : p.cands) {
    EXPECT_TRUE(
        e.AddFact("cand", {Value::Int(row[0]), Value::Int(row[1])}).ok());
  }
  BackendRunResult r;
  // A bounded stop returns non-OK by design; parity of the outcome is
  // what the test asserts, so no EXPECT here.
  r.status = e.Run().ToString();
  r.reason = e.outcome().reason;
  r.model = DumpOrderedModel(e);
  return r;
}

TEST_P(SeedSweep, RandomChoiceVmMatchesInterpreter) {
  const RandomChoiceProgram p = MakeRandomChoiceProgram(GetParam() * 523 + 41);
  const BackendRunResult oracle =
      RunChoiceProgram(p, EvalBackend::kInterp, 1);
  ASSERT_EQ(oracle.reason, TerminationReason::kCompleted) << oracle.status;
  ASSERT_FALSE(oracle.model.empty());
  for (uint32_t threads : {1u, 8u}) {
    const BackendRunResult vm = RunChoiceProgram(p, EvalBackend::kVm, threads);
    EXPECT_EQ(vm.status, oracle.status);
    EXPECT_EQ(vm.model, oracle.model)
        << "threads=" << threads << "\n" << p.text;
  }
}

TEST_P(SeedSweep, BoundedStopParityAcrossBackends) {
  // Deterministic guardrails only (tuple/stage/iteration caps — the
  // wall-clock and memory limits are not run-to-run reproducible). Both
  // backends must trip the same limit at the same derivation and leave
  // the same queryable partial state.
  Rng rng(GetParam() * 787 + 53);
  const RandomChoiceProgram p = MakeRandomChoiceProgram(GetParam() * 523 + 41);
  RunLimits tuple_cap;
  tuple_cap.max_tuples = static_cast<uint64_t>(rng.NextInt(1, 12));
  RunLimits stage_cap;
  stage_cap.max_stages = static_cast<uint64_t>(rng.NextInt(1, 5));
  RunLimits iter_cap;
  iter_cap.max_iterations = static_cast<uint64_t>(rng.NextInt(1, 3));
  for (const RunLimits& limits : {tuple_cap, stage_cap, iter_cap}) {
    const BackendRunResult interp =
        RunChoiceProgram(p, EvalBackend::kInterp, 1, limits);
    const BackendRunResult vm =
        RunChoiceProgram(p, EvalBackend::kVm, 1, limits);
    EXPECT_EQ(static_cast<int>(vm.reason), static_cast<int>(interp.reason))
        << p.text;
    EXPECT_EQ(vm.status, interp.status) << p.text;
    EXPECT_EQ(vm.model, interp.model) << p.text;
  }
}

// -- Abstract-interpretation soundness --------------------------------------
// The analyzer's verdicts are claims about *every* run; here they face
// actual runs over random inputs.

TEST_P(SeedSweep, RandomStratifiedAnalysisIsSound) {
  const RandomProgram p = MakeRandomStratifiedProgram(GetParam() * 577 + 5);
  Engine e;
  ASSERT_TRUE(e.LoadProgram(p.text).ok());
  for (const auto& row : p.e1) {
    ASSERT_TRUE(
        e.AddFact("e1", {Value::Int(row[0]), Value::Int(row[1])}).ok());
  }
  for (const auto& row : p.e2) {
    ASSERT_TRUE(
        e.AddFact("e2", {Value::Int(row[0]), Value::Int(row[1])}).ok());
  }
  ASSERT_TRUE(e.Run().ok()) << p.text;
  const absint::AnalysisResult* r = e.absint();
  ASSERT_NE(r, nullptr);
  // This family is type-clean by construction: error-class analysis
  // findings (GD300/GD301) would be false positives.
  for (const Diagnostic& d : r->diagnostics) {
    EXPECT_NE(d.severity, DiagSeverity::kError)
        << d.code << ": " << d.message << "\n" << p.text;
  }
  // Soundness: every stored row lies within the inferred signature, and
  // actual relation sizes respect the cardinality bounds.
  for (const absint::PredicateSignature& sig : r->signatures) {
    const Relation* rel = e.Find(sig.name, sig.arity);
    if (rel == nullptr) continue;
    if (!sig.populated) {
      EXPECT_EQ(rel->size(), 0u) << sig.DisplayName() << "\n" << p.text;
      continue;
    }
    EXPECT_TRUE(sig.card.Contains(rel->size()))
        << sig.DisplayName() << " rows=" << rel->size() << "\n" << p.text;
    for (RowId row = 0; row < rel->size(); ++row) {
      const TupleView t = rel->Row(row);
      for (uint32_t c = 0; c < sig.arity; ++c) {
        ASSERT_TRUE(sig.args[c].types.Has(t[c].kind()))
            << sig.DisplayName() << " col " << c << "\n" << p.text;
        if (t[c].is_int()) {
          ASSERT_TRUE(sig.args[c].iv.Contains(t[c].AsInt()))
              << sig.DisplayName() << " col " << c << " = " << t[c].AsInt()
              << "\n" << p.text;
        }
      }
    }
  }
}

TEST_P(SeedSweep, GuaranteedOverflowIsFlaggedAndDerivesNothing) {
  // Random near-limit EDB plus a shift that provably overflows: GD013
  // must fire, and the run must agree by deriving zero rows.
  Rng rng(GetParam() * 263 + 17);
  const int64_t base = Value::kMaxInt - rng.NextInt(0, 50);
  const int64_t shift = rng.NextInt(51, 500);
  Engine e;
  const std::string text =
      "boom(Y) <- m(X), Y = X + " + std::to_string(shift) + ".\n";
  ASSERT_TRUE(e.LoadProgram(text).ok());
  ASSERT_TRUE(e.AddFact("m", {Value::Int(base)}).ok());
  auto lint = e.Lint();
  ASSERT_TRUE(lint.ok());
  EXPECT_TRUE(std::any_of(
      lint->diagnostics.begin(), lint->diagnostics.end(),
      [](const Diagnostic& d) { return d.code == diag::kGuaranteedOverflow; }))
      << text;
  ASSERT_TRUE(e.Run().ok());
  EXPECT_TRUE(e.Query("boom", 1).empty()) << text;
}

TEST_P(SeedSweep, NearOverflowStaysQuietAndDerives) {
  // The same shape with an in-range shift: no GD013, and the derived
  // value lands inside the inferred interval.
  Rng rng(GetParam() * 709 + 29);
  const int64_t base = Value::kMaxInt - rng.NextInt(100, 1000);
  const int64_t shift = rng.NextInt(0, 100);
  Engine e;
  const std::string text =
      "ok(Y) <- m(X), Y = X + " + std::to_string(shift) + ".\n";
  ASSERT_TRUE(e.LoadProgram(text).ok());
  ASSERT_TRUE(e.AddFact("m", {Value::Int(base)}).ok());
  auto lint = e.Lint();
  ASSERT_TRUE(lint.ok());
  EXPECT_FALSE(std::any_of(
      lint->diagnostics.begin(), lint->diagnostics.end(),
      [](const Diagnostic& d) { return d.code == diag::kGuaranteedOverflow; }))
      << text;
  ASSERT_TRUE(e.Run().ok());
  ASSERT_EQ(e.Query("ok", 1).size(), 1u);
  const absint::PredicateSignature* sig = e.absint()->Find("ok", 1);
  ASSERT_NE(sig, nullptr);
  EXPECT_TRUE(sig->args[0].iv.Contains(base + shift)) << text;
}

}  // namespace
}  // namespace gdlog
