// Parameterized property sweeps: for many random seeds, the declarative
// engine must agree with the procedural baselines, and every produced
// fact set must satisfy the algorithms' invariants.
#include <gtest/gtest.h>

#include <set>

#include "baselines/heapsort.h"
#include "baselines/huffman.h"
#include "baselines/kruskal.h"
#include "baselines/matching.h"
#include "baselines/prim.h"
#include "baselines/tsp.h"
#include "baselines/union_find.h"
#include "greedy/huffman.h"
#include "greedy/kruskal.h"
#include "greedy/matching.h"
#include "greedy/prim.h"
#include "greedy/sort.h"
#include "greedy/tsp.h"
#include "workload/graph_gen.h"
#include "workload/relation_gen.h"
#include "workload/text_gen.h"

namespace gdlog {
namespace {

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, PrimEqualsBaseline) {
  GraphGenOptions opts;
  opts.seed = GetParam();
  const Graph g = ConnectedRandomGraph(35, 70, opts);
  auto result = PrimMst(g, 0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_cost, BaselinePrim(g, 0).total_cost);
  EXPECT_EQ(result->edges.size(), g.num_nodes - 1);
}

TEST_P(SeedSweep, KruskalEqualsBaselineAndPrim) {
  GraphGenOptions opts;
  opts.seed = GetParam();
  const Graph g = ConnectedRandomGraph(25, 50, opts);
  auto kruskal = KruskalMst(g);
  ASSERT_TRUE(kruskal.ok());
  const int64_t base = BaselineKruskal(g).total_cost;
  EXPECT_EQ(kruskal->total_cost, base);
  auto prim = PrimMst(g, 0);
  ASSERT_TRUE(prim.ok());
  EXPECT_EQ(prim->total_cost, base);
}

TEST_P(SeedSweep, KruskalProducesAcyclicSpanningForest) {
  GraphGenOptions opts;
  opts.seed = GetParam();
  const Graph g = ConnectedRandomGraph(20, 30, opts);
  auto result = KruskalMst(g);
  ASSERT_TRUE(result.ok());
  UnionFind uf(g.num_nodes);
  for (const MstEdge& e : result->edges) {
    EXPECT_TRUE(uf.Union(static_cast<uint32_t>(e.parent),
                         static_cast<uint32_t>(e.node)));
  }
  EXPECT_EQ(uf.num_components(), 1u);
}

TEST_P(SeedSweep, SortEqualsHeapSort) {
  RelationGenOptions opts;
  opts.seed = GetParam();
  const auto tuples = RandomCostedRelation(150, opts);
  auto result = SortRelation(tuples);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sorted, BaselineHeapSort(tuples));
}

TEST_P(SeedSweep, MatchingEqualsBaseline) {
  GraphGenOptions opts;
  opts.seed = GetParam();
  const Graph g = BipartiteGraph(18, 18, 100, opts);
  auto result = GreedyMatching(g);
  ASSERT_TRUE(result.ok());
  const BaselineMatching base = BaselineGreedyMatching(g);
  EXPECT_EQ(result->total_cost, base.total_cost);
  EXPECT_EQ(result->arcs.size(), base.arcs.size());
}

TEST_P(SeedSweep, HuffmanEqualsBaselineCost) {
  TextGenOptions opts;
  opts.seed = GetParam();
  const auto freqs = ZipfLetterFrequencies(9, opts);
  auto result = HuffmanTree(freqs);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_cost, BaselineHuffman(freqs).total_cost);
  EXPECT_EQ(result->merges, freqs.size() - 1);
}

TEST_P(SeedSweep, TspEqualsBaseline) {
  GraphGenOptions opts;
  opts.seed = GetParam();
  const Graph g = CompleteGraph(10, opts);
  auto result = GreedyTspChain(g);
  ASSERT_TRUE(result.ok());
  const BaselineTspChain base = BaselineGreedyTsp(g);
  EXPECT_EQ(result->total_cost, base.total_cost);
  EXPECT_EQ(result->chain.size(), base.arcs.size());
}

TEST_P(SeedSweep, GridGraphMst) {
  GraphGenOptions opts;
  opts.seed = GetParam();
  const Graph g = GridGraph(6, 6, opts);
  auto prim = PrimMst(g, 0);
  ASSERT_TRUE(prim.ok());
  EXPECT_EQ(prim->total_cost, BaselinePrim(g, 0).total_cost);
}

TEST_P(SeedSweep, ChoiceSeedStillOptimalForPrim) {
  // Tie-break seeds change which stable model the engine constructs, but
  // with unique weights the MST weight is invariant.
  GraphGenOptions gopts;
  gopts.seed = GetParam();
  const Graph g = ConnectedRandomGraph(20, 40, gopts);
  const int64_t expected = BaselinePrim(g, 0).total_cost;
  EngineOptions eopts;
  eopts.eval.choice_seed = GetParam() * 7919 + 13;
  auto result = PrimMst(g, 0, eopts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_cost, expected);
}

TEST_P(SeedSweep, SmallInstancesAreStableModels) {
  GraphGenOptions opts;
  opts.seed = GetParam();
  const Graph g = ConnectedRandomGraph(6, 5, opts);
  auto prim = PrimMst(g, 0);
  ASSERT_TRUE(prim.ok());
  auto check = prim->engine->VerifyStableModel();
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_TRUE(check->stable) << check->diagnostic;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89, 144, 233));

}  // namespace
}  // namespace gdlog
