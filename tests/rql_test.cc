// Unit tests for the (R, Q, L) candidate queue of Section 6.
#include "eval/rql.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gdlog {
namespace {

class RqlTest : public ::testing::Test {
 protected:
  ValueStore store_;

  Value Key(int64_t k) {
    std::vector<Value> v{Value::Int(k)};
    return store_.MakeTuple(v);
  }
  std::vector<Value> Snap(int64_t a, int64_t b) {
    return {Value::Int(a), Value::Int(b)};
  }
};

TEST_F(RqlTest, MinOrderPopsAscending) {
  CandidateQueue q(&store_, CandidateQueue::Order::kMin, /*merge=*/false);
  q.Push(Value::Int(30), Key(1), Snap(1, 30));
  q.Push(Value::Int(10), Key(2), Snap(2, 10));
  q.Push(Value::Int(20), Key(3), Snap(3, 20));
  EXPECT_EQ(q.Pop()->cost.AsInt(), 10);
  EXPECT_EQ(q.Pop()->cost.AsInt(), 20);
  EXPECT_EQ(q.Pop()->cost.AsInt(), 30);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST_F(RqlTest, MaxOrderPopsDescending) {
  CandidateQueue q(&store_, CandidateQueue::Order::kMax, false);
  q.Push(Value::Int(30), Key(1), Snap(1, 30));
  q.Push(Value::Int(10), Key(2), Snap(2, 10));
  EXPECT_EQ(q.Pop()->cost.AsInt(), 30);
  EXPECT_EQ(q.Pop()->cost.AsInt(), 10);
}

TEST_F(RqlTest, FifoPreservesInsertionOrder) {
  CandidateQueue q(&store_, CandidateQueue::Order::kFifo, false);
  for (int i = 0; i < 5; ++i) q.Push(Value::Int(0), Key(i), Snap(i, 0));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.Pop()->snapshot[0].AsInt(), i);
  }
}

TEST_F(RqlTest, TieSeedPerturbsOrder) {
  CandidateQueue a(&store_, CandidateQueue::Order::kFifo, false, 0);
  CandidateQueue b(&store_, CandidateQueue::Order::kFifo, false, 12345);
  for (int i = 0; i < 16; ++i) {
    a.Push(Value::Int(0), Key(i), Snap(i, 0));
    b.Push(Value::Int(0), Key(i), Snap(i, 0));
  }
  bool differs = false;
  for (int i = 0; i < 16; ++i) {
    if (a.Pop()->snapshot[0] != b.Pop()->snapshot[0]) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST_F(RqlTest, DuplicateKeysDroppedInFullMode) {
  CandidateQueue q(&store_, CandidateQueue::Order::kMin, false);
  q.Push(Value::Int(10), Key(1), Snap(1, 10));
  q.Push(Value::Int(10), Key(1), Snap(1, 10));  // exact duplicate
  EXPECT_TRUE(q.Pop().has_value());
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_EQ(q.stats().merged, 1u);
}

TEST_F(RqlTest, MergeKeepsCheaperCandidate) {
  // The paper's insertion rule: a congruent, costlier fact goes to R;
  // a cheaper one supersedes the queued entry.
  CandidateQueue q(&store_, CandidateQueue::Order::kMin, /*merge=*/true);
  q.Push(Value::Int(50), Key(7), Snap(7, 50));
  q.Push(Value::Int(80), Key(7), Snap(7, 80));  // worse: to R
  q.Push(Value::Int(30), Key(7), Snap(7, 30));  // better: supersedes
  auto c = q.Pop();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->cost.AsInt(), 30);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_EQ(q.stats().merged, 2u);
}

TEST_F(RqlTest, MergeMaxQueueCountsClasses) {
  CandidateQueue q(&store_, CandidateQueue::Order::kMin, true);
  for (int round = 0; round < 10; ++round) {
    for (int k = 0; k < 4; ++k) {
      q.Push(Value::Int(100 - round * 10 + k), Key(k), Snap(k, round));
    }
  }
  // Only 4 congruence classes are ever live.
  EXPECT_EQ(q.stats().max_queue, 4u);
}

TEST_F(RqlTest, FiredClassBlocksReinsertion) {
  CandidateQueue q(&store_, CandidateQueue::Order::kMin, true);
  q.Push(Value::Int(10), Key(1), Snap(1, 10));
  auto c = q.Pop();
  q.MarkFired(*c);
  q.Push(Value::Int(5), Key(1), Snap(1, 5));  // L-hit at insertion
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_EQ(q.stats().fired, 1u);
}

TEST_F(RqlTest, RedundantClassBlockedInMergeMode) {
  CandidateQueue q(&store_, CandidateQueue::Order::kMin, true);
  q.Push(Value::Int(10), Key(1), Snap(1, 10));
  auto c = q.Pop();
  q.MarkRedundant(*c);  // FD-rejected: the whole class is dead
  q.Push(Value::Int(5), Key(1), Snap(1, 5));
  EXPECT_FALSE(q.Pop().has_value());
}

TEST_F(RqlTest, LinearScanModeSameResults) {
  CandidateQueue heap(&store_, CandidateQueue::Order::kMin, false, 0, false);
  CandidateQueue lin(&store_, CandidateQueue::Order::kMin, false, 0, true);
  Rng rng(3);
  std::vector<int64_t> costs;
  for (int i = 0; i < 100; ++i) costs.push_back(rng.NextInt(0, 1000) * 100 + i);
  for (int64_t c : costs) {
    heap.Push(Value::Int(c), Key(c), Snap(c, 0));
    lin.Push(Value::Int(c), Key(c), Snap(c, 0));
  }
  for (int i = 0; i < 100; ++i) {
    auto a = heap.Pop();
    auto b = lin.Pop();
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->cost, b->cost) << "at pop " << i;
  }
}

TEST_F(RqlTest, LargeVolumeHeapProperty) {
  CandidateQueue q(&store_, CandidateQueue::Order::kMin, false);
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    const int64_t c = rng.NextInt(0, 1'000'000) * 10'000 + i;
    q.Push(Value::Int(c), Key(c), Snap(c, 0));
  }
  int64_t prev = -1;
  size_t popped = 0;
  while (auto c = q.Pop()) {
    EXPECT_GE(c->cost.AsInt(), prev);
    prev = c->cost.AsInt();
    ++popped;
  }
  EXPECT_EQ(popped, 5000u);
}

}  // namespace
}  // namespace gdlog
