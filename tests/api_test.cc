// Tests for the Engine facade: lifecycle, error paths, queries,
// introspection, and engine options.
#include "api/engine.h"

#include <gtest/gtest.h>

namespace gdlog {
namespace {

TEST(Api, QueryUnknownPredicateIsEmpty) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram("p(1).").ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_TRUE(e.Query("nope", 3).empty());
  EXPECT_EQ(e.Find("nope", 3), nullptr);
  // Arity is part of the predicate identity.
  EXPECT_TRUE(e.Query("p", 2).empty());
  EXPECT_EQ(e.Query("p", 1).size(), 1u);
}

TEST(Api, LoadTwiceRejected) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram("p(1).").ok());
  EXPECT_FALSE(e.LoadProgram("q(1).").ok());
}

TEST(Api, RunWithoutProgramRejected) {
  Engine e;
  EXPECT_FALSE(e.Run().ok());
}

TEST(Api, VerifyBeforeRunRejected) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram("p(1).").ok());
  EXPECT_FALSE(e.VerifyStableModel().ok());
}

TEST(Api, ParseErrorsSurface) {
  Engine e;
  const Status st = e.LoadProgram("p(X <- q(X).");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(Api, AnalysisErrorsSurface) {
  Engine e;
  const Status st = e.LoadProgram(R"(
    p(X) <- q(X), not p(X).
    q(1).
  )");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kAnalysisError);
}

TEST(Api, UnsafeRuleRejectedAtRun) {
  // Head variable never bound: caught at compile (Run) time.
  Engine e;
  ASSERT_TRUE(e.LoadProgram("p(X, Y) <- q(X).").ok());
  const Status st = e.Run();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kAnalysisError);
}

TEST(Api, FactsViaTextAndApiAgree) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    q(7).
    r(X) <- q(X).
  )").ok());
  ASSERT_TRUE(e.AddFact("q", {Value::Int(8)}).ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.Query("r", 1).size(), 2u);
}

TEST(Api, SymbolAndNilValues) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram("out(X, Y) <- in(X, Y).").ok());
  ASSERT_TRUE(e.AddFact("in", {e.Sym("hello"), e.Nil()}).ok());
  ASSERT_TRUE(e.Run().ok());
  const auto rows = e.Query("out", 2);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(e.store().SymbolName(rows[0][0]), "hello");
  EXPECT_TRUE(rows[0][1].is_nil());
}

TEST(Api, StatsAvailableAfterRun) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    edge(1, 2). edge(2, 3). edge(3, 4).
    tc(X, Y) <- edge(X, Y).
    tc(X, Z) <- tc(X, Y), edge(Y, Z).
  )").ok());
  EXPECT_EQ(e.stats(), nullptr);
  ASSERT_TRUE(e.Run().ok());
  ASSERT_NE(e.stats(), nullptr);
  EXPECT_GT(e.stats()->exec.inserts, 0u);
  EXPECT_GT(e.stats()->saturation_rounds, 0u);
}

TEST(Api, AnalysisIntrospection) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    sp(nil, 0, 0).
    sp(X, C, I) <- next(I), p(X, C), least(C, I).
  )").ok());
  ASSERT_NE(e.analysis(), nullptr);
  bool found_stage_clique = false;
  for (const CliqueStageInfo& cl : e.analysis()->cliques) {
    if (cl.cls == CliqueClass::kStageStratified) found_stage_clique = true;
  }
  EXPECT_TRUE(found_stage_clique);
}

TEST(Api, StrictModeRejectsRelaxedPrograms) {
  EngineOptions opts;
  opts.stage.allow_relaxed_flat_rules = false;
  Engine e(opts);
  const Status st = e.LoadProgram(R"(
    p(nil, 0).
    p(X, I) <- next(I), cand(X, J), J < I, choice((), X).
    cand(X, J) <- p(_, J), q(X), not blocked(X, J).
    blocked(X, J) <- p(X, J).
  )");
  EXPECT_FALSE(st.ok());
}

TEST(Api, RelaxedModeAcceptsAndRuns) {
  Engine e;  // allow_relaxed_flat_rules defaults to true
  ASSERT_TRUE(e.LoadProgram(R"(
    q(10). q(20).
    p(nil, 0).
    p(X, I) <- next(I), cand(X, J), J < I, choice((), X).
    cand(X, J) <- p(_, J), q(X), not blocked(X, J).
    blocked(X, J) <- p(X, J).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_GE(e.Query("p", 2).size(), 2u);  // seed + at least one firing
}

TEST(Api, IntValueRange) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram("big(X) <- v(X).").ok());
  ASSERT_TRUE(e.AddFact("v", {Value::Int(Value::kMaxInt)}).ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.Query("big", 1)[0][0].AsInt(), Value::kMaxInt);
}

TEST(Api, NegativeArithmetic) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    v(5).
    w(Y) <- v(X), Y = X - 12.
    z(Y) <- w(X), Y = X * -2.
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.Query("w", 1)[0][0].AsInt(), -7);
  EXPECT_EQ(e.Query("z", 1)[0][0].AsInt(), 14);
}

TEST(Api, DivisionAndModulo) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    v(17).
    d(Y) <- v(X), Y = X / 5.
    m(Y) <- v(X), Y = X mod 5.
    never(Y) <- v(X), Y = X / 0.
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.Query("d", 1)[0][0].AsInt(), 3);
  EXPECT_EQ(e.Query("m", 1)[0][0].AsInt(), 2);
  EXPECT_TRUE(e.Query("never", 1).empty());  // division by zero: no match
}

}  // namespace
}  // namespace gdlog
