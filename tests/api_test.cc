// Tests for the Engine facade: lifecycle, error paths, queries,
// introspection, and engine options.
#include "api/engine.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace gdlog {
namespace {

TEST(Api, QueryUnknownPredicateIsEmpty) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram("p(1).").ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_TRUE(e.Query("nope", 3).empty());
  EXPECT_EQ(e.Find("nope", 3), nullptr);
  // Arity is part of the predicate identity.
  EXPECT_TRUE(e.Query("p", 2).empty());
  EXPECT_EQ(e.Query("p", 1).size(), 1u);
}

TEST(Api, LoadTwiceRejected) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram("p(1).").ok());
  EXPECT_FALSE(e.LoadProgram("q(1).").ok());
}

TEST(Api, RunWithoutProgramRejected) {
  Engine e;
  EXPECT_FALSE(e.Run().ok());
}

TEST(Api, VerifyBeforeRunRejected) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram("p(1).").ok());
  EXPECT_FALSE(e.VerifyStableModel().ok());
}

TEST(Api, ParseErrorsSurface) {
  Engine e;
  const Status st = e.LoadProgram("p(X <- q(X).");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(Api, AnalysisErrorsSurface) {
  Engine e;
  const Status st = e.LoadProgram(R"(
    p(X) <- q(X), not p(X).
    q(1).
  )");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kAnalysisError);
  EXPECT_EQ(DiagCodeOfStatus(st), diag::kNotStageStratified);
}

TEST(Api, LintReportsDiagnosticsWithoutFailing) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    p(X) <- q(X).
    q(1).
    orphan(9).
  )").ok());
  auto lint = e.Lint();
  ASSERT_TRUE(lint.ok());
  EXPECT_TRUE(lint->clean());
  EXPECT_EQ(lint->counts.warnings, 1u);  // orphan/1 is unused (GD004)
  ASSERT_EQ(lint->diagnostics.size(), 1u);
  EXPECT_EQ(lint->diagnostics[0].code, diag::kUnusedPredicate);
}

TEST(Api, UnsafeRuleRejectedAtRun) {
  // Head variable never bound: caught at compile (Run) time.
  Engine e;
  ASSERT_TRUE(e.LoadProgram("p(X, Y) <- q(X).").ok());
  const Status st = e.Run();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kAnalysisError);
}

TEST(Api, FactsViaTextAndApiAgree) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    q(7).
    r(X) <- q(X).
  )").ok());
  ASSERT_TRUE(e.AddFact("q", {Value::Int(8)}).ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.Query("r", 1).size(), 2u);
}

TEST(Api, SymbolAndNilValues) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram("out(X, Y) <- in(X, Y).").ok());
  ASSERT_TRUE(e.AddFact("in", {e.Sym("hello"), e.Nil()}).ok());
  ASSERT_TRUE(e.Run().ok());
  const auto rows = e.Query("out", 2);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(e.store().SymbolName(rows[0][0]), "hello");
  EXPECT_TRUE(rows[0][1].is_nil());
}

TEST(Api, StatsAvailableAfterRun) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    edge(1, 2). edge(2, 3). edge(3, 4).
    tc(X, Y) <- edge(X, Y).
    tc(X, Z) <- tc(X, Y), edge(Y, Z).
  )").ok());
  EXPECT_EQ(e.stats(), nullptr);
  ASSERT_TRUE(e.Run().ok());
  ASSERT_NE(e.stats(), nullptr);
  EXPECT_GT(e.stats()->exec.inserts, 0u);
  EXPECT_GT(e.stats()->saturation_rounds, 0u);
}

TEST(Api, AnalysisIntrospection) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    sp(nil, 0, 0).
    sp(X, C, I) <- next(I), p(X, C), least(C, I).
  )").ok());
  ASSERT_NE(e.analysis(), nullptr);
  bool found_stage_clique = false;
  for (const CliqueStageInfo& cl : e.analysis()->cliques) {
    if (cl.cls == CliqueClass::kStageStratified) found_stage_clique = true;
  }
  EXPECT_TRUE(found_stage_clique);
}

TEST(Api, StrictModeRejectsRelaxedPrograms) {
  EngineOptions opts;
  opts.stage.allow_relaxed_flat_rules = false;
  Engine e(opts);
  const Status st = e.LoadProgram(R"(
    p(nil, 0).
    p(X, I) <- next(I), cand(X, J), J < I, choice((), X).
    cand(X, J) <- p(_, J), q(X), not blocked(X, J).
    blocked(X, J) <- p(X, J).
  )");
  EXPECT_FALSE(st.ok());
}

TEST(Api, RelaxedModeAcceptsAndRuns) {
  Engine e;  // allow_relaxed_flat_rules defaults to true
  ASSERT_TRUE(e.LoadProgram(R"(
    q(10). q(20).
    p(nil, 0).
    p(X, I) <- next(I), cand(X, J), J < I, choice((), X).
    cand(X, J) <- p(_, J), q(X), not blocked(X, J).
    blocked(X, J) <- p(X, J).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_GE(e.Query("p", 2).size(), 2u);  // seed + at least one firing
}

TEST(Api, IntValueRange) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram("big(X) <- v(X).").ok());
  ASSERT_TRUE(e.AddFact("v", {Value::Int(Value::kMaxInt)}).ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.Query("big", 1)[0][0].AsInt(), Value::kMaxInt);
}

TEST(Api, NegativeArithmetic) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    v(5).
    w(Y) <- v(X), Y = X - 12.
    z(Y) <- w(X), Y = X * -2.
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.Query("w", 1)[0][0].AsInt(), -7);
  EXPECT_EQ(e.Query("z", 1)[0][0].AsInt(), 14);
}

TEST(Api, DivisionAndModulo) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    v(17).
    d(Y) <- v(X), Y = X / 5.
    m(Y) <- v(X), Y = X mod 5.
    never(Y) <- v(X), Y = X / 0.
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.Query("d", 1)[0][0].AsInt(), 3);
  EXPECT_EQ(e.Query("m", 1)[0][0].AsInt(), 2);
  EXPECT_TRUE(e.Query("never", 1).empty());  // division by zero: no match
}

// Observability integration: a Dijkstra run with obs enabled must produce
// a parseable run report whose fixpoint totals show the alternation at
// work (>= 1 gamma fire per assigned stage, >= 1 saturation round) and a
// loadable Chrome trace.
TEST(Api, RunReportAndTraceForDijkstra) {
  EngineOptions opts;
  opts.obs.enabled = true;
  opts.obs.sample_every = 1;
  Engine e(opts);
  ASSERT_TRUE(e.LoadProgram(R"(
    dist(Y, D, I) <- next(I), cand(Y, D, J), J < I, least(D, I),
                     not (dist(Y, _, J2), J2 < I).
    cand(Y, D, J) <- dist(X, DX, J), g(X, Y, C), D = DX + C.
  )").ok());
  // A 5-node weighted graph; node 0 is the source.
  const int edges[][3] = {{0, 1, 4}, {0, 2, 1}, {2, 1, 2}, {1, 3, 1},
                          {2, 3, 5}, {3, 4, 3}};
  for (const auto& ed : edges) {
    ASSERT_TRUE(e.AddFact("g", {Value::Int(ed[0]), Value::Int(ed[1]),
                                Value::Int(ed[2])}).ok());
  }
  ASSERT_TRUE(e.AddFact("dist", {Value::Int(0), Value::Int(0),
                                 Value::Int(0)}).ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.Query("dist", 3).size(), 5u);  // every node settles once

  auto report = e.RunReport();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto doc = ParseJson(*report);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  const JsonValue* fx = doc->Find("fixpoint");
  ASSERT_NE(fx, nullptr);
  const double stages = fx->Find("stages_assigned")->number;
  const double firings = fx->Find("gamma_firings")->number;
  EXPECT_GE(stages, 1);
  EXPECT_GE(firings, stages);  // >= one gamma fire per stage
  EXPECT_GE(fx->Find("saturation_rounds")->number, 1);

  // The ablation flags are echoed in the options block.
  const JsonValue* op = doc->Find("options");
  ASSERT_NE(op, nullptr);
  for (const char* flag : {"use_priority_queue", "use_seminaive",
                           "use_merge_congruence"}) {
    ASSERT_NE(op->Find(flag), nullptr) << flag;
    EXPECT_TRUE(op->Find(flag)->boolean) << flag;
  }

  // Per-rule profiles carry firing counts; the next rule fired.
  const JsonValue* rules = doc->Find("rules");
  ASSERT_TRUE(rules != nullptr && rules->is_array());
  double next_firings = 0;
  for (const JsonValue& r : rules->items) {
    if (r.Find("kind")->string == "next") next_firings += r.Find("firings")->number;
  }
  EXPECT_GE(next_firings, 1);

  // Phase wall times: evaluation took nonzero time.
  const JsonValue* phases = doc->Find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_GT(phases->Find("eval_ms")->number, 0);

  // Metrics snapshot is embedded when obs is on.
  ASSERT_NE(doc->Find("metrics"), nullptr);
  EXPECT_TRUE(doc->Find("metrics")->is_object());

  // The trace is loadable JSON with a nonempty event timeline.
  const std::string path = ::testing::TempDir() + "/gdlog_api_trace.json";
  ASSERT_TRUE(e.WriteTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream text;
  text << in.rdbuf();
  std::remove(path.c_str());
  auto trace = ParseJson(text.str());
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  const JsonValue* events = trace->Find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  EXPECT_FALSE(events->items.empty());
  bool saw_saturate = false, saw_gamma = false;
  for (const JsonValue& ev : events->items) {
    const JsonValue* name = ev.Find("name");
    if (name == nullptr) continue;
    if (name->string == "Saturate") saw_saturate = true;
    if (name->string == "GammaPhase") saw_gamma = true;
  }
  EXPECT_TRUE(saw_saturate);
  EXPECT_TRUE(saw_gamma);
}

TEST(Api, DefaultObsIsAlwaysOn) {
  // Metrics and the flight recorder default on; only the Chrome-trace
  // tracer stays opt-in.
  Engine e;
  ASSERT_TRUE(e.LoadProgram("p(X) <- q(X). q(1).").ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_NE(e.metrics(), nullptr);
  EXPECT_NE(e.flight_recorder(), nullptr);
  EXPECT_EQ(e.tracer(), nullptr);
  auto report = e.RunReport();
  ASSERT_TRUE(report.ok());
  auto doc = ParseJson(*report);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("metrics")->kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(e.MetricsText().ok());
  EXPECT_NE(e.DumpFlightRecorder().find("run-start"), std::string::npos);
  // Tracing off: WriteTrace refuses rather than writing an empty file.
  EXPECT_FALSE(e.WriteTrace("/tmp/never.json").ok());
}

TEST(Api, RunReportWithObsFullyOffStillValid) {
  EngineOptions opts;
  opts.obs.metrics_enabled = false;
  opts.obs.recorder_enabled = false;
  Engine e(opts);
  ASSERT_TRUE(e.LoadProgram("p(X) <- q(X). q(1).").ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.metrics(), nullptr);
  EXPECT_EQ(e.flight_recorder(), nullptr);
  EXPECT_FALSE(e.MetricsText().ok());
  EXPECT_NE(e.DumpFlightRecorder().find("disabled"), std::string::npos);
  auto report = e.RunReport();
  ASSERT_TRUE(report.ok());
  auto doc = ParseJson(*report);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("metrics")->kind, JsonValue::Kind::kNull);
}

TEST(Api, HostileRuleNamesSurviveJsonWriters) {
  // Predicate names with quotes, backslashes, and newlines cannot come
  // from the parser, but LoadProgramAst accepts any string — and those
  // names flow into the trace JSON, the run report's rule/plan sections,
  // and metric label values. Every writer must escape, not interpolate.
  const std::string evil = "we\"ird\\p\n\ttick`$";
  Program prog;
  Rule fact;
  fact.head = Literal::Atom("base", {TermNode::Const(Value::Int(1))});
  prog.rules.push_back(fact);
  Rule fact2;
  fact2.head = Literal::Atom("base", {TermNode::Const(Value::Int(2))});
  prog.rules.push_back(fact2);
  Rule rule;
  rule.head = Literal::Atom(evil, {TermNode::Var("X")});
  rule.body.push_back(Literal::Atom("base", {TermNode::Var("X")}));
  prog.rules.push_back(rule);

  EngineOptions opts;
  opts.obs.enabled = true;  // tracer on: exercise the Chrome writer too
  Engine e(opts);
  ASSERT_TRUE(e.LoadProgramAst(std::move(prog)).ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.Query(evil, 1).size(), 2u);

  // --json-report path: the report must parse and round-trip the name.
  auto report = e.RunReport();
  ASSERT_TRUE(report.ok());
  auto doc = ParseJson(*report);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* rules = doc->Find("rules");
  ASSERT_TRUE(rules != nullptr && rules->is_array());
  bool found = false;
  for (const JsonValue& r : rules->items) {
    const JsonValue* head = r.Find("head");
    if (head != nullptr && head->string == evil + "/1") found = true;
  }
  EXPECT_TRUE(found) << *report;

  // Chrome trace path: the written file must be valid JSON.
  const std::string path = ::testing::TempDir() + "/gdlog_evil_trace.json";
  ASSERT_TRUE(e.WriteTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream text;
  text << in.rdbuf();
  std::remove(path.c_str());
  auto trace = ParseJson(text.str());
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(trace->Find("traceEvents")->is_array());

  // Prometheus path: label values must come out escaped.
  auto metrics = e.MetricsText();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->find("we\"ird"), std::string::npos) << *metrics;
  EXPECT_NE(metrics->find("we\\\"ird"), std::string::npos) << *metrics;
}

TEST(Api, ReportAndMetricsAgreeOnPeakMemory) {
  // Single source of truth: termination.peak_memory_bytes in the report,
  // outcome().peak_memory_bytes, and the memory.tracked_peak_bytes gauge
  // are all filled from MemoryBudget::peak() at the same instant.
  Engine e;
  ASSERT_TRUE(e.LoadProgram("p(X) <- q(X). q(1). q(2). q(3).").ok());
  ASSERT_TRUE(e.Run().ok());
  ASSERT_NE(e.metrics(), nullptr);
  const Gauge* g = e.metrics()->FindGauge("memory.tracked_peak_bytes");
  ASSERT_NE(g, nullptr);
  EXPECT_GT(g->value(), 0);
  EXPECT_EQ(static_cast<uint64_t>(g->value()), e.outcome().peak_memory_bytes);
  auto report = e.RunReport();
  ASSERT_TRUE(report.ok());
  auto doc = ParseJson(*report);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("termination")->Find("peak_memory_bytes")->number,
            static_cast<double>(g->value()));
}

TEST(Api, BoundedStopReportGolden) {
  // Golden shape of a bounded-stop report: the termination section names
  // the limit, carries the GD code in its status, and its peak memory
  // equals both outcome() and the memory.tracked_peak_bytes gauge —
  // MemoryBudget::peak() read once at the Run boundary.
  EngineOptions opts;
  opts.limits.max_tuples = 200;
  opts.obs.recorder_dump_on_stop = false;  // keep test logs quiet
  Engine e(opts);
  ASSERT_TRUE(
      e.LoadProgram("c(0). c(M) <- c(N), M = N + 1, N < 2000000000.").ok());
  ASSERT_FALSE(e.Run().ok());
  ASSERT_TRUE(e.has_run());

  auto report = e.RunReport();
  ASSERT_TRUE(report.ok());
  auto doc = ParseJson(*report);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* term = doc->Find("termination");
  ASSERT_NE(term, nullptr);
  EXPECT_EQ(term->Find("reason")->string, "tuple-limit");
  EXPECT_FALSE(term->Find("ok")->boolean);
  EXPECT_NE(term->Find("status")->string.find("GD201"), std::string::npos);
  EXPECT_GT(term->Find("guard_checks")->number, 0);

  const double report_peak = term->Find("peak_memory_bytes")->number;
  EXPECT_GT(report_peak, 0);
  EXPECT_EQ(report_peak,
            static_cast<double>(e.outcome().peak_memory_bytes));
  ASSERT_NE(e.metrics(), nullptr);
  const Gauge* g = e.metrics()->FindGauge("memory.tracked_peak_bytes");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(report_peak, static_cast<double>(g->value()));

  // The metrics snapshot embedded in the same report agrees too.
  const JsonValue* metrics = doc->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* gauges = metrics->Find("gauges");
  ASSERT_TRUE(gauges != nullptr && gauges->is_array());
  bool found = false;
  for (const JsonValue& gj : gauges->items) {
    if (gj.Find("name")->string == "memory.tracked_peak_bytes") {
      found = true;
      EXPECT_EQ(gj.Find("value")->number, report_peak);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace gdlog
