// Abstract-interpretation tests: lattice algebra, transfer-function
// edge cases mirroring the runtime arithmetic, signature inference on
// realistic choice programs, the GD3xx diagnostics (trigger and
// non-trigger pairs), the engine integration (priors, report, .types),
// and a soundness check of inferred bounds against an actual run.
#include "analysis/absint/absint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/absint/lattice.h"
#include "api/engine.h"
#include "obs/json.h"
#include "parser/parser.h"

namespace gdlog {
namespace absint {
namespace {

// ---------------------------------------------------------------------------
// Lattices
// ---------------------------------------------------------------------------

TEST(Lattice, TypeSetAlgebra) {
  EXPECT_TRUE(TypeSet::Bottom().empty());
  EXPECT_TRUE(TypeSet::Top().is_top());
  const TypeSet i = TypeSet::Int();
  const TypeSet s = TypeSet::Only(ValueKind::kSymbol);
  EXPECT_TRUE(i.Intersect(s).empty());
  EXPECT_TRUE(i.Union(s).Has(ValueKind::kInt));
  EXPECT_TRUE(i.Union(s).Has(ValueKind::kSymbol));
  EXPECT_FALSE(i.Union(s).Has(ValueKind::kNil));
  EXPECT_EQ(TypeSetName(TypeSet::Bottom()), "bottom");
  EXPECT_EQ(TypeSetName(TypeSet::Top()), "any");
  EXPECT_EQ(TypeSetName(i.Union(s)), "int|symbol");
}

TEST(Lattice, IntervalMeetJoinWiden) {
  const Interval a = Interval::Range(0, 10);
  const Interval b = Interval::Range(5, 20);
  EXPECT_EQ(a.Meet(b), Interval::Range(5, 10));
  EXPECT_EQ(a.Join(b), Interval::Range(0, 20));
  EXPECT_TRUE(Interval::Range(0, 4).Meet(Interval::Range(5, 9)).empty());
  // Widening: a moved bound jumps to infinity, a stable bound stays.
  const Interval w = a.Widen(Interval::Range(0, 11));
  EXPECT_EQ(w.lo, 0);
  EXPECT_EQ(w.hi, Interval::kPosInf);
  // The empty interval is the join/widen identity.
  EXPECT_EQ(Interval::Empty().Join(a), a);
  EXPECT_EQ(Interval::Empty().Widen(a), a);
}

TEST(Lattice, IntervalArithmeticSaturates) {
  const Interval full = Interval::Full();
  const Interval one = Interval::Point(1);
  // Infinity absorbs instead of wrapping.
  EXPECT_EQ(IntervalAdd(full, one), full);
  EXPECT_EQ(IntervalMul(full, Interval::Point(-2)).lo, Interval::kNegInf);
  // 0 * inf must be 0, not NaN-ish garbage.
  EXPECT_EQ(IntervalMul(Interval::Point(0), full), Interval::Point(0));
  // Near-limit finite arithmetic saturates to the sentinels.
  const Interval big = Interval::Point(INT64_MAX - 1);
  EXPECT_EQ(IntervalAdd(big, Interval::Point(5)).hi, Interval::kPosInf);
}

TEST(Lattice, IntervalDivModMirrorRuntime) {
  // Division excludes 0 from the divisor corners; [0,0] yields empty
  // (every concrete evaluation fails, like runtime div-by-zero).
  EXPECT_TRUE(IntervalDiv(Interval::Point(10), Interval::Point(0)).empty());
  EXPECT_EQ(IntervalDiv(Interval::Point(10), Interval::Range(2, 5)),
            Interval::Range(2, 5));
  // Divisor range spanning zero still considers ±1 corners.
  const Interval d = IntervalDiv(Interval::Point(10), Interval::Range(-2, 3));
  EXPECT_LE(d.lo, -10);
  EXPECT_GE(d.hi, 10);
  // Mod magnitude is bounded by |divisor| - 1, sign follows the dividend.
  const Interval m = IntervalMod(Interval::Range(0, 100), Interval::Point(7));
  EXPECT_EQ(m, Interval::Range(0, 6));
  const Interval mneg =
      IntervalMod(Interval::Range(-100, -1), Interval::Point(7));
  EXPECT_EQ(mneg, Interval::Range(-6, 0));
  EXPECT_TRUE(IntervalMod(Interval::Point(10), Interval::Point(0)).empty());
}

TEST(Lattice, AbstractValueMeetDropsIntOnEmptyInterval) {
  const AbstractValue a = AbstractValue::IntRange(Interval::Range(0, 4));
  const AbstractValue b = AbstractValue::IntRange(Interval::Range(5, 9));
  const AbstractValue m = a.Meet(b);
  // Pure-int values with disjoint ranges meet to bottom.
  EXPECT_TRUE(m.empty());
  // With another kind bit present the value survives as a non-int.
  AbstractValue c = a;
  c.types = c.types.Union(TypeSet::Only(ValueKind::kSymbol));
  const AbstractValue m2 = c.Meet(AbstractValue::Top());
  EXPECT_TRUE(m2.types.Has(ValueKind::kSymbol));
}

TEST(Lattice, CardArithmeticSaturates) {
  EXPECT_EQ(CardAdd(3, 4), 7u);
  EXPECT_EQ(CardAdd(CardBound::kInf, 1), CardBound::kInf);
  EXPECT_EQ(CardMul(1u << 20, 1u << 20), uint64_t{1} << 40);
  EXPECT_EQ(CardMul(CardBound::kInf, 2), CardBound::kInf);
  EXPECT_EQ(CardMul(UINT64_MAX / 2, 3), CardBound::kInf);
  EXPECT_EQ(CardMul(0, CardBound::kInf), 0u);
  EXPECT_EQ(CardBoundName(CardBound::AtMost(7)), "[0, 7]");
  EXPECT_EQ(CardBoundName(CardBound::Unbounded()), "[0, inf]");
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

AnalysisResult AnalyzeText(const char* text) {
  ValueStore store;
  auto parsed = ParseProgram(&store, text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return Analyze(*parsed);
}

bool HasCode(const AnalysisResult& r, std::string_view code) {
  return std::any_of(r.diagnostics.begin(), r.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

TEST(Absint, InfersTypesIntervalsAndCardinality) {
  const AnalysisResult r = AnalyzeText(R"(
    e(1, a). e(2, b). e(3, c).
    out(Y, X) <- e(X, Y).
  )");
  const PredicateSignature* e = r.Find("e", 2);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->populated);
  EXPECT_EQ(e->card, CardBound::Exact(3));
  EXPECT_EQ(e->args[0].types, TypeSet::Int());
  EXPECT_EQ(e->args[0].iv, Interval::Range(1, 3));
  EXPECT_EQ(e->args[1].types, TypeSet::Only(ValueKind::kSymbol));
  const PredicateSignature* out = r.Find("out", 2);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->populated);
  // Columns swap through the rule head.
  EXPECT_EQ(out->args[0].types, TypeSet::Only(ValueKind::kSymbol));
  EXPECT_EQ(out->args[1].iv, Interval::Range(1, 3));
  // One body atom: the bound is the body relation's size.
  EXPECT_EQ(out->card.hi, 3u);
}

TEST(Absint, ArithmeticPropagatesIntervals) {
  const AnalysisResult r = AnalyzeText(R"(
    n(2). n(5).
    d(Y) <- n(X), Y = X * 10 + 1.
  )");
  const PredicateSignature* d = r.Find("d", 1);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->args[0].iv, Interval::Range(21, 51));
  EXPECT_FALSE(HasCode(r, diag::kGuaranteedOverflow));
}

TEST(Absint, ComparisonNarrowsRanges) {
  const AnalysisResult r = AnalyzeText(R"(
    n(1). n(5). n(9).
    small(X) <- n(X), X < 5.
    big(X) <- n(X), X >= 5.
  )");
  const PredicateSignature* s = r.Find("small", 1);
  const PredicateSignature* b = r.Find("big", 1);
  ASSERT_NE(s, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(s->args[0].iv, Interval::Range(1, 4));
  EXPECT_EQ(b->args[0].iv, Interval::Range(5, 9));
}

TEST(Absint, RecursionWidensToInfinity) {
  const AnalysisResult r = AnalyzeText(R"(
    n(0).
    n2(Y) <- n(X), Y = X + 1.
    n2(Y) <- n2(X), Y = X + 1.
  )");
  const PredicateSignature* n2 = r.Find("n2", 1);
  ASSERT_NE(n2, nullptr);
  EXPECT_TRUE(n2->populated);
  EXPECT_EQ(n2->args[0].iv.lo, 1);
  EXPECT_EQ(n2->args[0].iv.hi, Interval::kPosInf);
  EXPECT_FALSE(n2->card.hi_finite());
  // Widening converged well before the hard round cap.
  EXPECT_LT(r.rounds, 64);
}

TEST(Absint, NextStageVariableIsNonNegativeInt) {
  const AnalysisResult r = AnalyzeText(R"(
    sp(nil, 0, 0).
    sp(X, C, I) <- next(I), p(X, C), least(C, I), choice((), X).
    p(a, 1). p(b, 2).
  )");
  const PredicateSignature* sp = r.Find("sp", 3);
  ASSERT_NE(sp, nullptr);
  EXPECT_TRUE(sp->populated);
  // Column 2 is the stage counter: an int from 0 up.
  EXPECT_TRUE(sp->args[2].types.has_int());
  EXPECT_EQ(sp->args[2].iv.lo, 0);
  // Column 0 mixes nil (exit rule) with the chosen symbols.
  EXPECT_TRUE(sp->args[0].types.Has(ValueKind::kNil));
  EXPECT_TRUE(sp->args[0].types.Has(ValueKind::kSymbol));
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Absint, GD300DisjointTypesAtTwoUses) {
  const AnalysisResult r = AnalyzeText("s(a). n(1).\nbad(X) <- s(X), n(X).\n");
  EXPECT_TRUE(HasCode(r, diag::kTypeConflict));
}

TEST(Absint, GD300NotFiredWhenTypesOverlap) {
  const AnalysisResult r = AnalyzeText(
      "m(a). m(1). n(1). n(2).\nok(X) <- m(X), n(X).\n");
  EXPECT_FALSE(HasCode(r, diag::kTypeConflict));
}

TEST(Absint, GD301ArithmeticOverNonInt) {
  const AnalysisResult r =
      AnalyzeText("s(a). n(1).\nbad(Y) <- s(S), n(N), Y = S + N.\n");
  EXPECT_TRUE(HasCode(r, diag::kNonIntArithmetic));
}

TEST(Absint, GD301NotFiredForIntOperands) {
  const AnalysisResult r =
      AnalyzeText("n(1). n(2).\nok(Y) <- n(A), n(B), Y = A + B.\n");
  EXPECT_FALSE(HasCode(r, diag::kNonIntArithmetic));
}

TEST(Absint, GD310DeterminedChoiceWitness) {
  const AnalysisResult r = AnalyzeText(
      "e(1, 2). e(2, 3).\npick(X, Y) <- e(X, _), Y = X, choice(X, Y).\n");
  EXPECT_TRUE(HasCode(r, diag::kDeadChoice));
}

TEST(Absint, GD310NotFiredForFreeWitness) {
  const AnalysisResult r = AnalyzeText(
      "e(1, 2). e(1, 3).\npick(X, Y) <- e(X, Y), choice(X, Y).\n");
  EXPECT_FALSE(HasCode(r, diag::kDeadChoice));
}

TEST(Absint, GD311ChoiceWithoutExtremumOrStage) {
  const AnalysisResult r = AnalyzeText(
      "e(1, 2). e(1, 3).\npick(X, Y) <- e(X, Y), choice(X, Y).\n");
  EXPECT_TRUE(HasCode(r, diag::kChoiceNeverRejects));
}

TEST(Absint, GD311NotFiredWithExtremumOrNext) {
  const AnalysisResult r = AnalyzeText(R"(
    prm(nil, a, 0, 0).
    prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I,
                       least(C, I), choice(Y, X).
    new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
    g(a, b, 1).
  )");
  EXPECT_FALSE(HasCode(r, diag::kChoiceNeverRejects));
}

TEST(Absint, UnseededPredicateIsUnanalyzedNotEmpty) {
  // r/1 may receive facts via AddFact after lint time: no GD012, no
  // cascade into out/1, and both predicates stay unpopulated.
  const AnalysisResult r = AnalyzeText("out(X) <- r(X), X > 5.\n");
  EXPECT_FALSE(HasCode(r, diag::kProvablyEmpty));
  const PredicateSignature* out = r.Find("out", 1);
  ASSERT_NE(out, nullptr);
  EXPECT_FALSE(out->populated);
}

TEST(Absint, SignaturesTextListsEveryPredicate) {
  const AnalysisResult r = AnalyzeText(R"(
    e(1, a). e(2, b).
    out(Y) <- e(X, Y), X > 1.
  )");
  const std::string text = SignaturesText(r);
  EXPECT_NE(text.find("e/2"), std::string::npos);
  EXPECT_NE(text.find("out/1"), std::string::npos);
  EXPECT_NE(text.find("int[1, 2]"), std::string::npos);
  EXPECT_NE(text.find("symbol"), std::string::npos);
}

TEST(Absint, JsonIsParseableAndIntegerOnly) {
  const AnalysisResult r = AnalyzeText("e(1, a). e(2, b).\n");
  JsonWriter w;
  AnalysisToJson(r, &w);
  const std::string json = w.Take();
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* preds = doc->Find("predicates");
  ASSERT_NE(preds, nullptr);
  ASSERT_EQ(preds->items.size(), 1u);
  const JsonValue* card = preds->items[0].Find("cardinality");
  ASSERT_NE(card, nullptr);
  EXPECT_EQ(card->Find("lo")->number, 2.0);
  EXPECT_EQ(card->Find("hi")->number, 2.0);
  // Golden-diff safety: no floating-point rendering anywhere.
  EXPECT_EQ(json.find('.'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

TEST(AbsintEngine, CatalogFactsSeedTheAnalysis) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram("out(Y) <- r(X), Y = X + 1.\n").ok());
  ASSERT_TRUE(e.AddFact("r", {e.Int(10)}).ok());
  ASSERT_TRUE(e.AddFact("r", {e.Int(20)}).ok());
  ASSERT_TRUE(e.Run().ok());
  const AnalysisResult* r = e.absint();
  ASSERT_NE(r, nullptr);
  const PredicateSignature* out = r->Find("out", 1);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->populated);
  EXPECT_EQ(out->args[0].iv, Interval::Range(11, 21));
  EXPECT_EQ(out->card.hi, 2u);
}

TEST(AbsintEngine, LintMergesAnalysisDiagnostics) {
  Engine e;
  ASSERT_TRUE(
      e.LoadProgram("a(1). a(2).\ndead(X) <- a(X), X > 5.\n").ok());
  auto lint = e.Lint();
  ASSERT_TRUE(lint.ok());
  EXPECT_TRUE(std::any_of(
      lint->diagnostics.begin(), lint->diagnostics.end(),
      [](const Diagnostic& d) { return d.code == diag::kProvablyEmpty; }));
}

TEST(AbsintEngine, StaticAnalysisOffDisablesEverything) {
  EngineOptions opts;
  opts.static_analysis = false;
  Engine e(opts);
  ASSERT_TRUE(
      e.LoadProgram("a(1). a(2).\ndead(X) <- a(X), X > 5.\n").ok());
  auto lint = e.Lint();
  ASSERT_TRUE(lint.ok());
  EXPECT_TRUE(lint->diagnostics.empty());
  EXPECT_FALSE(e.TypeSignaturesText().ok());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.absint(), nullptr);
  auto report = e.RunReport();
  ASSERT_TRUE(report.ok());
  auto doc = ParseJson(*report);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("analysis")->kind, JsonValue::Kind::kNull);
}

TEST(AbsintEngine, RunReportCarriesAnalysisAndPhase) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram("e(1, 2).\np(X, Y) <- e(X, Y).\n").ok());
  ASSERT_TRUE(e.Run().ok());
  auto report = e.RunReport();
  ASSERT_TRUE(report.ok());
  auto doc = ParseJson(*report);
  ASSERT_TRUE(doc.ok());
  const JsonValue* analysis = doc->Find("analysis");
  ASSERT_NE(analysis, nullptr);
  ASSERT_NE(analysis->kind, JsonValue::Kind::kNull);
  EXPECT_NE(analysis->Find("predicates"), nullptr);
  const JsonValue* phases = doc->Find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_NE(phases->Find("absint_ms"), nullptr);
  const JsonValue* options = doc->Find("options");
  ASSERT_NE(options, nullptr);
  EXPECT_NE(options->Find("use_cardinality_priors"), nullptr);
  EXPECT_NE(options->Find("static_analysis"), nullptr);
}

TEST(AbsintEngine, TypeSignaturesTextWorksBeforeAndAfterRun) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram("e(1, 2).\np(X, Y) <- e(X, Y).\n").ok());
  auto before = e.TypeSignaturesText();
  ASSERT_TRUE(before.ok());
  EXPECT_NE(before->find("p/2"), std::string::npos);
  ASSERT_TRUE(e.Run().ok());
  auto after = e.TypeSignaturesText();
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->find("p/2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Soundness against a real run
// ---------------------------------------------------------------------------

// Every relation of a completed run must satisfy the inferred signature:
// per-column types and intervals contain every stored value, and the
// cardinality bound contains the actual row count.
void ExpectRunWithinSignatures(Engine& e) {
  const AnalysisResult* r = e.absint();
  ASSERT_NE(r, nullptr);
  for (const PredicateSignature& sig : r->signatures) {
    const Relation* rel = e.Find(sig.name, sig.arity);
    if (rel == nullptr) continue;
    if (!sig.populated) {
      EXPECT_EQ(rel->size(), 0u) << sig.DisplayName();
      continue;
    }
    EXPECT_TRUE(sig.card.Contains(rel->size())) << sig.DisplayName();
    for (RowId row = 0; row < rel->size(); ++row) {
      const TupleView t = rel->Row(row);
      for (uint32_t c = 0; c < sig.arity; ++c) {
        const Value v = t[c];
        EXPECT_TRUE(sig.args[c].types.Has(v.kind()))
            << sig.DisplayName() << " col " << c;
        if (v.is_int()) {
          EXPECT_TRUE(sig.args[c].iv.Contains(v.AsInt()))
              << sig.DisplayName() << " col " << c << " = " << v.AsInt();
        }
      }
    }
  }
}

TEST(AbsintSoundness, PrimStyleChoiceProgram) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    prm(nil, a, 0, 0).
    prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I,
                       least(C, I), choice(Y, X).
    new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
    g(a, b, 1). g(b, c, 4). g(a, c, 3). g(c, d, 2).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  ExpectRunWithinSignatures(e);
}

TEST(AbsintSoundness, ArithmeticAndNegation) {
  Engine e;
  ASSERT_TRUE(e.LoadProgram(R"(
    n(3). n(7). n(11).
    sq(Y) <- n(X), Y = X * X.
    odd_gap(D) <- n(A), n(B), A < B, D = B - A, not n(D).
  )").ok());
  ASSERT_TRUE(e.Run().ok());
  ExpectRunWithinSignatures(e);
}

}  // namespace
}  // namespace absint
}  // namespace gdlog
