// Scheduling conference talks in one lecture hall with the declarative
// activity-selection program — the "scheduling algorithms" family the
// paper's Section 5 mentions — plus shortest travel times between
// session buildings via the declarative Dijkstra.
//
//   $ ./example_talk_schedule
#include <cstdio>

#include "greedy/dijkstra.h"
#include "greedy/scheduling.h"
#include "workload/graph.h"

int main() {
  // Candidate talks as [start, end) hours on a single day (x100 to keep
  // everything integral: 9:30 == 950... we simply use minutes).
  struct Talk {
    const char* title;
    int64_t start, end;
  };
  const Talk talks[] = {
      {"Stable models in practice", 9 * 60, 10 * 60},
      {"Choice constructs redux", 9 * 60 + 30, 11 * 60},
      {"Greedy fixpoints", 10 * 60, 11 * 60},
      {"Stage stratification", 10 * 60 + 45, 12 * 60},
      {"Priority queues for Datalog", 11 * 60, 12 * 60 + 30},
      {"Matroids and least()", 12 * 60, 13 * 60},
      {"Q&A marathon", 9 * 60, 13 * 60},
      {"Closing panel", 12 * 60 + 30, 13 * 60 + 30},
  };
  std::vector<std::pair<int64_t, int64_t>> jobs;
  for (const Talk& t : talks) jobs.push_back({t.start, t.end});

  auto schedule = gdlog::SelectActivities(jobs);
  if (!schedule.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 schedule.status().ToString().c_str());
    return 1;
  }
  std::printf("lecture hall schedule (%zu of %zu talks fit):\n",
              schedule->jobs.size(), jobs.size());
  for (const auto& j : schedule->jobs) {
    for (const Talk& t : talks) {
      if (t.start == j.start && t.end == j.finish) {
        std::printf("  %02lld:%02lld-%02lld:%02lld  %s\n",
                    static_cast<long long>(t.start / 60),
                    static_cast<long long>(t.start % 60),
                    static_cast<long long>(t.end / 60),
                    static_cast<long long>(t.end % 60), t.title);
      }
    }
  }

  // Walking times between campus buildings (minutes), and the fastest
  // routes from the main hall (node 0).
  gdlog::Graph campus;
  campus.num_nodes = 6;
  campus.edges = {{0, 1, 4}, {0, 2, 7}, {1, 2, 2}, {1, 3, 9},
                  {2, 4, 3}, {4, 3, 4}, {3, 5, 6}, {4, 5, 12}};
  auto routes = gdlog::DijkstraSssp(campus, 0);
  if (!routes.ok()) {
    std::fprintf(stderr, "sssp failed: %s\n",
                 routes.status().ToString().c_str());
    return 1;
  }
  const char* buildings[] = {"main hall", "library",   "cs dept",
                             "physics",   "cafeteria", "dorms"};
  std::printf("\nwalking times from the main hall (settled in Dijkstra "
              "order):\n");
  for (const auto& s : routes->settled) {
    std::printf("  %-10s %3lld min (stage %lld)\n", buildings[s.node],
                static_cast<long long>(s.distance),
                static_cast<long long>(s.stage));
  }
  return 0;
}
