// Route planning with the paper's greedy TSP approximation (Section 5,
// "Computation of Sub-Optimals"): random cities on a plane, greedy
// chain on the gdlog engine, compared against the procedural greedy and
// a cheapest-incident-arc lower bound.
//
//   $ ./example_tsp_tour [num_cities]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "baselines/tsp.h"
#include "common/rng.h"
#include "greedy/tsp.h"
#include "workload/graph.h"

int main(int argc, char** argv) {
  uint32_t n = 16;
  if (argc > 1) n = static_cast<uint32_t>(std::atoi(argv[1]));

  // Random cities on a 1000x1000 plane; complete graph of rounded
  // Euclidean distances (scaled so ties are unlikely).
  gdlog::Rng rng(7);
  std::vector<std::pair<double, double>> cities;
  for (uint32_t i = 0; i < n; ++i) {
    cities.push_back({rng.NextDouble() * 1000, rng.NextDouble() * 1000});
  }
  gdlog::Graph g;
  g.num_nodes = n;
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = a + 1; b < n; ++b) {
      const double dx = cities[a].first - cities[b].first;
      const double dy = cities[a].second - cities[b].second;
      g.edges.push_back(
          {a, b, static_cast<int64_t>(std::hypot(dx, dy) * 1000)});
    }
  }

  auto tour = gdlog::GreedyTspChain(g);
  if (!tour.ok()) {
    std::fprintf(stderr, "tsp failed: %s\n",
                 tour.status().ToString().c_str());
    return 1;
  }
  const auto base = gdlog::BaselineGreedyTsp(g);

  std::printf("%u cities, %zu arcs considered\n", n, g.edges.size());
  std::printf("\ngreedy chain (declarative engine):\n  ");
  if (!tour->chain.empty()) {
    std::printf("%lld", static_cast<long long>(tour->chain[0].from));
  }
  for (const auto& arc : tour->chain) {
    std::printf(" -> %lld", static_cast<long long>(arc.to));
  }
  std::printf("\n");

  // Cheapest-incident-arc lower bound for a closed tour.
  std::vector<int64_t> best(n, std::numeric_limits<int64_t>::max());
  for (const auto& e : g.edges) {
    best[e.u] = std::min(best[e.u], e.w);
    best[e.v] = std::min(best[e.v], e.w);
  }
  int64_t lb = 0;
  for (int64_t b : best) lb += b;

  std::printf("\nchain length (engine)   : %lld\n",
              static_cast<long long>(tour->total_cost));
  std::printf("chain length (baseline) : %lld  (%s)\n",
              static_cast<long long>(base.total_cost),
              base.total_cost == tour->total_cost ? "identical"
                                                  : "MISMATCH");
  std::printf("lower bound             : %lld\n",
              static_cast<long long>(lb));
  std::printf("greedy overshoot        : %.1f%%\n",
              100.0 * (static_cast<double>(tour->total_cost) / lb - 1.0));
  return base.total_cost == tour->total_cost ? 0 : 1;
}
