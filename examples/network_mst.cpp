// Designing a cable layout for a grid-shaped road network: run both
// declarative MST programs (Prim, Example 4; Kruskal, Example 8) on the
// same network, confirm they agree with each other and with the
// procedural baselines, and show the engine's evaluation statistics.
//
//   $ ./example_network_mst [rows cols]
#include <cstdio>
#include <cstdlib>

#include "baselines/kruskal.h"
#include "baselines/prim.h"
#include "greedy/kruskal.h"
#include "greedy/prim.h"
#include "workload/graph_gen.h"

int main(int argc, char** argv) {
  uint32_t rows = 12, cols = 12;
  if (argc == 3) {
    rows = static_cast<uint32_t>(std::atoi(argv[1]));
    cols = static_cast<uint32_t>(std::atoi(argv[2]));
  }
  gdlog::GraphGenOptions opts;
  opts.seed = 2026;
  const gdlog::Graph network = gdlog::GridGraph(rows, cols, opts);
  std::printf("road network: %u junctions, %zu segments\n",
              network.num_nodes, network.edges.size());

  auto prim = gdlog::PrimMst(network, /*root=*/0);
  if (!prim.ok()) {
    std::fprintf(stderr, "prim failed: %s\n",
                 prim.status().ToString().c_str());
    return 1;
  }
  auto kruskal = gdlog::KruskalMst(network);
  if (!kruskal.ok()) {
    std::fprintf(stderr, "kruskal failed: %s\n",
                 kruskal.status().ToString().c_str());
    return 1;
  }
  const auto base_prim = gdlog::BaselinePrim(network, 0);
  const auto base_kruskal = gdlog::BaselineKruskal(network);

  std::printf("\n%-28s %14s %8s\n", "method", "cable cost", "edges");
  std::printf("%-28s %14lld %8zu\n", "declarative Prim (Ex. 4)",
              static_cast<long long>(prim->total_cost),
              prim->edges.size());
  std::printf("%-28s %14lld %8zu\n", "declarative Kruskal (Ex. 8)",
              static_cast<long long>(kruskal->total_cost),
              kruskal->edges.size());
  std::printf("%-28s %14lld %8zu\n", "procedural Prim",
              static_cast<long long>(base_prim.total_cost),
              base_prim.edges.size());
  std::printf("%-28s %14lld %8zu\n", "procedural Kruskal",
              static_cast<long long>(base_kruskal.total_cost),
              base_kruskal.edges.size());

  std::printf("\nfirst five cable segments by construction stage "
              "(Prim):\n");
  for (size_t i = 0; i < prim->edges.size() && i < 5; ++i) {
    const auto& e = prim->edges[i];
    std::printf("  stage %lld: junction %lld -> %lld (cost %lld)\n",
                static_cast<long long>(e.stage),
                static_cast<long long>(e.parent),
                static_cast<long long>(e.node),
                static_cast<long long>(e.cost));
  }

  const gdlog::FixpointStats* stats = prim->engine->stats();
  const gdlog::CandidateQueueStats* qs = prim->engine->QueueStats(0);
  if (stats && qs) {
    std::printf("\nengine internals (Prim run):\n");
    std::printf("  gamma firings        : %llu\n",
                static_cast<unsigned long long>(stats->gamma_firings));
    std::printf("  saturation rounds    : %llu\n",
                static_cast<unsigned long long>(stats->saturation_rounds));
    std::printf("  Q_r inserted         : %llu\n",
                static_cast<unsigned long long>(qs->inserted));
    std::printf("  Q_r congruence-merged: %llu (the paper's R_r at "
                "insertion)\n",
                static_cast<unsigned long long>(qs->merged));
    std::printf("  Q_r live high-water  : %zu (bounded by n = %u)\n",
                qs->max_queue, network.num_nodes);
  }
  return prim->total_cost == base_prim.total_cost &&
                 kruskal->total_cost == base_kruskal.total_cost
             ? 0
             : 1;
}
