// The paper's running example (Examples 1 and 2): assigning one student
// per course and one course per student with choice, exploring the
// different stable models with tie-break seeds, and the bi_st_c
// combination of least and choice from Section 2.
//
//   $ ./example_course_assignment
#include <cstdio>
#include <set>
#include <string>

#include "api/engine.h"

namespace {

constexpr char kFacts[] = R"(
  takes(andy, engl, 4).
  takes(mark, engl, 2).
  takes(ann, math, 3).
  takes(mark, math, 2).
)";

void ShowAssignments() {
  std::printf("Example 1 — one student per course, one course per "
              "student:\n");
  std::set<std::string> models;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    gdlog::EngineOptions opts;
    opts.eval.choice_seed = seed;
    gdlog::Engine e(opts);
    std::string program = std::string(kFacts) +
        "a_st(St, Crs, G) <- takes(St, Crs, G), choice(Crs, St), "
        "choice(St, Crs).";
    if (!e.LoadProgram(program).ok() || !e.Run().ok()) return;
    std::set<std::string> lines;  // canonical order for model identity
    for (const auto& row : e.Query("a_st", 3)) {
      std::string line = "  a_st(";
      line += e.store().SymbolName(row[0]);
      line += ", ";
      line += e.store().SymbolName(row[1]);
      line += ", " + std::to_string(row[2].AsInt()) + ")\n";
      lines.insert(std::move(line));
    }
    std::string model;
    for (const std::string& l : lines) model += l;
    if (models.insert(model).second) {
      std::printf("choice model (seed %llu):\n%s",
                  static_cast<unsigned long long>(seed), model.c_str());
    }
  }
  std::printf("(%zu distinct stable models reached; the paper lists "
              "three)\n\n",
              models.size());
}

void ShowBiStC() {
  std::printf("Section 2 — bi-injective pairs with the lowest grades "
              "above 1 (least + choice):\n");
  gdlog::Engine e;
  std::string program = std::string(kFacts) +
      "bi_st_c(St, Crs, G) <- takes(St, Crs, G), G > 1, least(G), "
      "choice(St, Crs), choice(Crs, St).";
  if (!e.LoadProgram(program).ok() || !e.Run().ok()) return;
  for (const auto& row : e.Query("bi_st_c", 3)) {
    std::printf("  bi_st_c(%s, %s, %lld)\n",
                std::string(e.store().SymbolName(row[0])).c_str(),
                std::string(e.store().SymbolName(row[1])).c_str(),
                static_cast<long long>(row[2].AsInt()));
  }
  auto rewritten = e.RewrittenProgramText();
  if (rewritten.ok()) {
    std::printf("\nIts first-order rewriting (choice before least, as "
                "Section 2 mandates):\n%s\n",
                rewritten->c_str());
  }
}

}  // namespace

int main() {
  ShowAssignments();
  ShowBiStC();
  return 0;
}
