// A tiny text compressor built on the declarative Huffman program
// (paper Example 6): count letter frequencies, derive the code tree on
// the gdlog engine, encode and decode a message, and report the
// compression ratio against fixed-width coding.
//
//   $ ./example_huffman_coder [text]
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "greedy/huffman.h"
#include "workload/text_gen.h"

int main(int argc, char** argv) {
  std::string text =
      "the greedy paradigm of algorithm design is a well known tool used "
      "for efficiently solving many classical computational problems";
  if (argc > 1) text = argv[1];

  const auto freqs = gdlog::CountLetterFrequencies(text);
  std::printf("message: %zu characters, %zu distinct symbols\n",
              text.size(), freqs.size());

  auto huffman = gdlog::HuffmanTree(freqs);
  if (!huffman.ok()) {
    std::fprintf(stderr, "huffman failed: %s\n",
                 huffman.status().ToString().c_str());
    return 1;
  }

  std::printf("\ncode table (symbol, frequency, code):\n");
  std::map<std::string, int64_t> freq_of(freqs.begin(), freqs.end());
  for (const auto& [symbol, code] : huffman->codes) {
    const char c = symbol[0];
    std::printf("  '%s' %6lld  %s\n", c == ' ' ? "_" : symbol.c_str(),
                static_cast<long long>(freq_of[symbol]), code.c_str());
  }

  // Encode / decode round-trip.
  std::string encoded;
  for (char c : text) encoded += huffman->codes.at(std::string(1, c));
  std::string decoded;
  {
    // Walk codes greedily (prefix-free, so unambiguous).
    std::map<std::string, std::string> by_code;
    for (const auto& [sym, code] : huffman->codes) by_code[code] = sym;
    std::string cur;
    for (char bit : encoded) {
      cur += bit;
      auto it = by_code.find(cur);
      if (it != by_code.end()) {
        decoded += it->second;
        cur.clear();
      }
    }
  }
  if (decoded != text) {
    std::fprintf(stderr, "round-trip failed!\n");
    return 1;
  }

  const double fixed_bits =
      text.size() * std::ceil(std::log2(static_cast<double>(freqs.size())));
  std::printf("\nencoded size   : %zu bits\n", encoded.size());
  std::printf("fixed-width    : %.0f bits\n", fixed_bits);
  std::printf("compression    : %.1f%%\n",
              100.0 * (1.0 - encoded.size() / fixed_bits));
  std::printf("weighted path  : %lld (== engine's summed merge costs)\n",
              static_cast<long long>(huffman->total_cost));
  std::printf("round-trip     : OK\n");
  std::printf("\nHuffman tree term: %s\n", huffman->tree.c_str());
  return 0;
}
