// Quickstart: load a choice-Datalog program from text, add EDB facts,
// run the choice fixpoint, inspect the result and its first-order
// rewriting.
//
//   $ ./example_quickstart
#include <cstdio>

#include "api/engine.h"

int main() {
  gdlog::Engine engine;

  // The paper's Example 4: Prim's algorithm, verbatim.
  auto status = engine.LoadProgram(R"(
    prm(nil, 0, 0, 0).
    prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I,
                       least(C, I), choice(Y, X).
    new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
  )");
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // A small weighted graph (both directions; edges into the root node 0
  // are unnecessary since the seed fact plants it in the tree).
  struct E {
    int64_t u, v, w;
  };
  for (const E& e : std::initializer_list<E>{
           {0, 1, 4}, {0, 2, 3}, {1, 2, 1}, {1, 3, 2}, {2, 3, 4},
           {3, 4, 2}, {2, 4, 5}}) {
    engine.AddFact("g", {engine.Int(e.u), engine.Int(e.v), engine.Int(e.w)});
    if (e.u != 0) {
      engine.AddFact("g",
                     {engine.Int(e.v), engine.Int(e.u), engine.Int(e.w)});
    }
  }

  status = engine.Run();
  if (!status.ok()) {
    std::fprintf(stderr, "run failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("Minimum spanning tree (prm facts, stage order):\n");
  int64_t total = 0;
  for (const auto& row : engine.Query("prm", 4)) {
    if (row[0].is_nil()) continue;
    std::printf("  stage %lld: %lld -> %lld  (cost %lld)\n",
                static_cast<long long>(row[3].AsInt()),
                static_cast<long long>(row[0].AsInt()),
                static_cast<long long>(row[1].AsInt()),
                static_cast<long long>(row[2].AsInt()));
    total += row[2].AsInt();
  }
  std::printf("  total cost: %lld\n", static_cast<long long>(total));

  // The declarative meaning: the first-order program whose stable models
  // this run constructs one of (Sections 2-3 of the paper).
  auto rewritten = engine.RewrittenProgramText();
  if (rewritten.ok()) {
    std::printf("\nFirst-order rewriting (stable-model semantics):\n%s",
                rewritten->c_str());
  }

  // And Theorem 1, checked live.
  auto check = engine.VerifyStableModel();
  if (check.ok()) {
    std::printf("\nstable model check: %s (%zu facts)\n",
                check->stable ? "STABLE" : "NOT STABLE",
                check->model_facts);
  }
  return 0;
}
