// libFuzzer harness for the bytecode VM, with the interpreter as the
// differential oracle.
//
// The contract under test: for any input that parses and loads, running
// the program under EvalBackend::kInterp and EvalBackend::kVm with
// identical guardrails must terminate for the same reason, return the
// same status, and leave a bit-identical model (same tuples in the same
// insertion order — the contract docs/VM.md states). Any divergence
// aborts the process so libFuzzer keeps the input as a crash.
//
// Limits keep runaway programs bounded. The tuple/stage/iteration caps
// are deterministic and part of the parity contract; the wall-clock
// deadline and memory budget exist only as a hang/OOM backstop and are
// NOT reproducible run-to-run, so an input that trips one of them on
// either side is skipped rather than compared.
//
// Build:  cmake -B build -DCMAKE_CXX_COMPILER=clang++ -DGDLOG_FUZZ=ON \
//               -DGDLOG_SANITIZE=ON && cmake --build build
// Run:    build/fuzz/fuzz_vm fuzz/corpus
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "api/engine.h"
#include "eval/fixpoint.h"

namespace {

struct RunResult {
  bool loaded = false;
  gdlog::TerminationReason reason = gdlog::TerminationReason::kCompleted;
  std::string status;
  std::vector<std::string> model;
};

RunResult RunOnce(std::string_view text, gdlog::EvalBackend backend) {
  gdlog::EngineOptions options;
  options.eval.backend = backend;
  // Deterministic caps — identical trip points are part of the parity
  // contract under test.
  options.limits.max_tuples = 2000;
  options.limits.max_stages = 64;
  options.limits.max_iterations = 64;
  // Nondeterministic backstops — trips are skipped, not compared.
  options.limits.deadline_ms = 100;
  options.limits.max_memory_bytes = 64ull << 20;

  RunResult r;
  gdlog::Engine engine(options);
  if (!engine.LoadProgram(text).ok()) return r;
  r.loaded = true;
  r.status = engine.Run().ToString();
  r.reason = engine.outcome().reason;
  for (const auto& ref : engine.program()->AllPredicates()) {
    for (const auto& tuple : engine.Query(ref.name, ref.arity)) {
      std::string line = ref.name;
      for (const gdlog::Value& v : tuple) {
        line += ' ';
        line += engine.store().ToString(v);
      }
      r.model.push_back(std::move(line));
    }
  }
  return r;
}

bool Nondeterministic(gdlog::TerminationReason r) {
  switch (r) {
    case gdlog::TerminationReason::kDeadline:
    case gdlog::TerminationReason::kMemoryLimit:
    case gdlog::TerminationReason::kCancelled:
    case gdlog::TerminationReason::kOom:
    case gdlog::TerminationReason::kFault:
      return true;
    default:
      return false;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  const RunResult interp = RunOnce(text, gdlog::EvalBackend::kInterp);
  if (!interp.loaded) return 0;
  const RunResult vm = RunOnce(text, gdlog::EvalBackend::kVm);

  if (Nondeterministic(interp.reason) || Nondeterministic(vm.reason)) {
    return 0;
  }
  if (interp.reason != vm.reason || interp.status != vm.status ||
      interp.model != vm.model) {
    std::fprintf(stderr,
                 "backend divergence\n  interp: reason=%d status=%s rows=%zu\n"
                 "  vm:     reason=%d status=%s rows=%zu\n",
                 static_cast<int>(interp.reason), interp.status.c_str(),
                 interp.model.size(), static_cast<int>(vm.reason),
                 vm.status.c_str(), vm.model.size());
    const size_t n =
        interp.model.size() < vm.model.size() ? interp.model.size()
                                              : vm.model.size();
    for (size_t i = 0; i < n; ++i) {
      if (interp.model[i] != vm.model[i]) {
        std::fprintf(stderr, "  first diff at row %zu:\n    interp: %s\n"
                             "    vm:     %s\n",
                     i, interp.model[i].c_str(), vm.model[i].c_str());
        break;
      }
    }
    std::abort();
  }
  return 0;
}
