// libFuzzer harness for the lexer + parser front end and the static
// analyses behind it.
//
// The contract under test: arbitrary bytes fed to ParseProgram either
// produce a Program or a ParseError Status — never a crash, hang, or
// sanitizer report. Programs that parse are additionally pushed through
// stage analysis, lint, and the full abstract-interpretation pipeline
// (type/interval/cardinality fixpoint, choice-determinism closure, JSON
// and text renderers), which must also fail only via Status /
// Diagnostic, and through an evaluation bounded hard enough that no
// input can stall the fuzzer.
//
// Build:  cmake -B build -DCMAKE_CXX_COMPILER=clang++ -DGDLOG_FUZZ=ON \
//               -DGDLOG_SANITIZE=ON && cmake --build build
// Run:    build/fuzz/fuzz_parser fuzz/corpus  (see fuzz/CMakeLists.txt
//         for the seed-corpus target)
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "analysis/absint/absint.h"
#include "analysis/lint.h"
#include "api/engine.h"
#include "obs/json.h"
#include "parser/parser.h"
#include "value/value.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  // Lint first: it exercises parse + analysis and must never abort.
  {
    gdlog::ValueStore store;
    (void)gdlog::LintSource(&store, text, {});
  }

  // The abstract interpreter on anything that parses: the fixpoint,
  // every diagnostic path, and both renderers must be total.
  {
    gdlog::ValueStore store;
    auto parsed = gdlog::ParseProgram(&store, text);
    if (parsed.ok()) {
      const gdlog::absint::AnalysisResult r = gdlog::absint::Analyze(*parsed);
      gdlog::JsonWriter w;
      gdlog::absint::AnalysisToJson(r, &w);
      (void)w.Take();
      (void)gdlog::absint::SignaturesText(r);
    }
  }

  // Then a bounded end-to-end run. The guardrails keep any accidentally
  // valid-and-runaway program from hanging the fuzzer.
  gdlog::EngineOptions options;
  options.limits.deadline_ms = 100;
  options.limits.max_tuples = 10000;
  options.limits.max_memory_bytes = 64ull << 20;
  gdlog::Engine engine(options);
  if (engine.LoadProgram(text).ok()) {
    (void)engine.Run();
  }
  return 0;
}
